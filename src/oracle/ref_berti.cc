#include "oracle/ref_berti.hh"

#include <algorithm>

namespace berti::oracle
{

namespace
{

// 16-bit timestamps (Table I); ages computed with wrap-safe arithmetic.
constexpr Cycle kTsMask = 0xFFFF;
// Line addresses stored with 24 bits (Figure 6).
constexpr Addr kLineMask = 0xFFFFFF;

} // namespace

RefBerti::RefBerti(const BertiConfig &config)
    : cfg(config), historySets(config.historySets), table(config.deltaTableEntries)
{
    for (auto &set : historySets)
        set.resize(cfg.historyWays);
    for (auto &e : table)
        e.slots.resize(cfg.deltasPerEntry);
}

Addr
RefBerti::contextOf(Addr ip, Addr v_line) const
{
    return cfg.perPage ? (v_line >> (kPageBits - kLineBits)) << 2 : ip;
}

unsigned
RefBerti::historySet(Addr ip) const
{
    return static_cast<unsigned>((ip >> 2) % cfg.historySets);
}

std::uint16_t
RefBerti::historyTag(Addr ip) const
{
    return static_cast<std::uint16_t>((ip >> 2) / cfg.historySets & 0x7F);
}

std::uint16_t
RefBerti::tableTag(Addr ip) const
{
    return static_cast<std::uint16_t>(
        ((ip >> 2) * 0x9e3779b97f4a7c15ull) >> 54);
}

void
RefBerti::insertHistory(Addr ip, Addr v_line, Cycle now)
{
    auto &set = historySets[historySet(ip)];
    // FIFO within the set: a free way if one exists, else the oldest.
    HistoryEntry *victim = &set[0];
    for (auto &e : set) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.insertedAt < victim->insertedAt)
            victim = &e;
    }
    victim->valid = true;
    victim->ipTag = historyTag(ip);
    victim->line = v_line & kLineMask;
    victim->ts = now & kTsMask;
    victim->insertedAt = ++insertionCounter;
}

void
RefBerti::searchHistory(Addr ip, Addr v_line, Cycle demand_time,
                        Cycle latency)
{
    // Latency counter overflow stores zero, which means "unknown — skip
    // training" (section IV-I latency-width sensitivity).
    Cycle max_latency = (Cycle{1} << cfg.latencyBits) - 1;
    if (latency == 0 || latency > max_latency)
        return;

    const auto &set = historySets[historySet(ip)];
    std::uint16_t tag = historyTag(ip);
    Cycle demand_masked = demand_time & kTsMask;
    Cycle min_age = cfg.requireTimely ? latency : 1;

    // A delta is timely when a prefetch triggered at the older access
    // would have completed by the demand: entry.ts + latency <= demand.
    std::vector<const HistoryEntry *> timely;
    for (const auto &e : set) {
        if (!e.valid || e.ipTag != tag)
            continue;
        Cycle age = (demand_masked - e.ts) & kTsMask;
        if (age >= min_age && age < (kTsMask >> 1))
            timely.push_back(&e);
    }

    // Only the youngest few accesses feed deltas (Table I: 8 per search).
    std::sort(timely.begin(), timely.end(),
              [](const HistoryEntry *a, const HistoryEntry *b) {
                  return a->insertedAt > b->insertedAt;
              });
    if (timely.size() > cfg.maxTimelyPerSearch)
        timely.resize(cfg.maxTimelyPerSearch);

    TableEntry *entry = findEntry(ip);
    if (!entry)
        entry = &allocEntry(ip);

    for (const HistoryEntry *e : timely) {
        int delta = static_cast<int>(
            static_cast<std::int64_t>(v_line & kLineMask) -
            static_cast<std::int64_t>(e->line));
        if (delta == 0 || delta > cfg.maxDeltaMagnitude ||
            delta < -cfg.maxDeltaMagnitude) {
            continue;
        }
        recordDelta(*entry, delta);
    }

    if (++entry->searchesThisPhase >= cfg.phaseLength)
        closePhase(*entry);
}

RefBerti::TableEntry *
RefBerti::findEntry(Addr ip)
{
    std::uint16_t tag = tableTag(ip);
    for (auto &e : table) {
        if (e.valid && e.ipTag == tag)
            return &e;
    }
    return nullptr;
}

const RefBerti::TableEntry *
RefBerti::findEntry(Addr ip) const
{
    return const_cast<RefBerti *>(this)->findEntry(ip);
}

RefBerti::TableEntry &
RefBerti::allocEntry(Addr ip)
{
    TableEntry *victim = &table[0];
    for (auto &e : table) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.insertedAt < victim->insertedAt)
            victim = &e;
    }
    victim->valid = true;
    victim->ipTag = tableTag(ip);
    victim->searchesThisPhase = 0;
    victim->completedOnePhase = false;
    victim->timelyOccurrences = 0;
    victim->insertedAt = ++insertionCounter;
    for (auto &s : victim->slots)
        s = DeltaSlot{};
    return *victim;
}

void
RefBerti::recordDelta(TableEntry &entry, int delta)
{
    if (entry.timelyOccurrences < 0xFFFF)
        ++entry.timelyOccurrences;
    DeltaSlot *free_slot = nullptr;
    for (auto &s : entry.slots) {
        if (s.valid && s.delta == delta) {
            // 4-bit coverage counter saturates.
            if (s.coverage < 15)
                ++s.coverage;
            return;
        }
        if (!s.valid && !free_slot)
            free_slot = &s;
    }
    if (free_slot) {
        free_slot->valid = true;
        free_slot->delta = delta;
        free_slot->coverage = 1;
        free_slot->status = DeltaStatus::NoPref;
        return;
    }
    // Replace the lowest-coverage slot whose last-phase status marked it
    // replaceable; a table full of protected deltas discards the new one.
    DeltaSlot *victim = nullptr;
    for (auto &s : entry.slots) {
        if (s.status != DeltaStatus::L2PrefRepl &&
            s.status != DeltaStatus::NoPref) {
            continue;
        }
        if (!victim || s.coverage < victim->coverage)
            victim = &s;
    }
    if (victim) {
        victim->delta = delta;
        victim->coverage = 1;
        victim->status = DeltaStatus::NoPref;
    }
}

void
RefBerti::closePhase(TableEntry &entry)
{
    // Rank deltas by coverage over the finished phase, highest first;
    // equal coverages keep slot order (the hardware priority encoder).
    std::vector<DeltaSlot *> ranked;
    for (auto &s : entry.slots) {
        if (s.valid)
            ranked.push_back(&s);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const DeltaSlot *a, const DeltaSlot *b) {
                         return a->coverage > b->coverage;
                     });

    unsigned selected = 0;
    double phase = static_cast<double>(cfg.phaseLength);
    for (DeltaSlot *s : ranked) {
        double cov = static_cast<double>(s->coverage) / phase;
        if (cov > cfg.l1Watermark && selected < cfg.maxSelectedDeltas) {
            s->status = DeltaStatus::L1Pref;
            ++selected;
        } else if (cov > cfg.l2Watermark &&
                   selected < cfg.maxSelectedDeltas) {
            s->status = cov < cfg.replWatermark ? DeltaStatus::L2PrefRepl
                                                : DeltaStatus::L2Pref;
            ++selected;
        } else {
            s->status = DeltaStatus::NoPref;
        }
        s->coverage = 0;
    }
    entry.searchesThisPhase = 0;
    entry.completedOnePhase = true;
}

void
RefBerti::predict(Addr ip, Addr v_line, double mshr_occupancy)
{
    const TableEntry *entry = findEntry(ip);
    if (!entry)
        return;

    bool mshr_free = mshr_occupancy < cfg.mshrWatermark;
    auto issue = [&](int delta, bool l1_class) {
        Addr target = static_cast<Addr>(
            static_cast<std::int64_t>(v_line) + delta);
        if (!cfg.crossPage &&
            (target >> (kPageBits - kLineBits)) !=
                (v_line >> (kPageBits - kLineBits))) {
            return;
        }
        FillLevel level = (l1_class && mshr_free) ? FillLevel::L1
                                                  : FillLevel::L2;
        issued.push_back({target, level});
    };

    if (cfg.issueAllDeltas) {
        for (const auto &s : entry->slots) {
            if (s.valid)
                issue(s.delta, true);
        }
        return;
    }

    if (!entry->completedOnePhase) {
        // Warm-up (section III-C): enough gathered occurrences and the
        // stricter watermark against the searches so far.
        if (entry->timelyOccurrences < cfg.warmupMinDeltas ||
            entry->searchesThisPhase == 0) {
            return;
        }
        double searches = static_cast<double>(entry->searchesThisPhase);
        for (const auto &s : entry->slots) {
            if (s.valid &&
                static_cast<double>(s.coverage) / searches >=
                    cfg.warmupWatermark) {
                issue(s.delta, true);
            }
        }
        return;
    }

    for (const auto &s : entry->slots) {
        if (!s.valid)
            continue;
        if (s.status == DeltaStatus::L1Pref) {
            issue(s.delta, true);
        } else if (s.status == DeltaStatus::L2Pref ||
                   s.status == DeltaStatus::L2PrefRepl) {
            issue(s.delta, false);
        }
    }
}

void
RefBerti::onAccess(const Prefetcher::AccessInfo &info, Cycle now,
                   double mshr_occupancy)
{
    if (info.vLine == kNoAddr)
        return;
    Addr ctx = contextOf(info.ip, info.vLine);
    if (!info.hit) {
        insertHistory(ctx, info.vLine, now);
    } else if (info.firstHitOnPrefetch) {
        insertHistory(ctx, info.vLine, now);
        if (info.prefetchLatency != 0)
            searchHistory(ctx, info.vLine, now, info.prefetchLatency);
    }
    predict(ctx, info.vLine, mshr_occupancy);
}

void
RefBerti::onFill(const Prefetcher::FillInfo &info, Cycle now,
                 double /*mshr_occupancy*/)
{
    if (!info.hadDemandWaiter || info.vLine == kNoAddr)
        return;
    Cycle demand_time = now >= info.latency ? now - info.latency : 0;
    searchHistory(contextOf(info.ip, info.vLine), info.vLine, demand_time,
                  info.latency);
}

std::vector<RefBerti::DeltaInfo>
RefBerti::deltasFor(Addr ip) const
{
    std::vector<DeltaInfo> out;
    const TableEntry *e = findEntry(ip);
    if (!e)
        return out;
    for (const auto &s : e->slots) {
        if (s.valid)
            out.push_back({s.delta, s.coverage, s.status});
    }
    return out;
}

} // namespace berti::oracle
