#include "oracle/diff_driver.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "verify/auditor.hh"
#include "verify/sim_error.hh"

namespace berti::oracle
{

namespace
{

/** Counts completions of the demand reads the driver submits. */
class CollectingClient : public ReadClient
{
  public:
    void readDone(const MemRequest &) override { ++completed; }
    std::uint64_t completed = 0;
};

CacheConfig
levelConfig(const char *name, unsigned level, unsigned sets,
            unsigned ways, Cycle latency)
{
    CacheConfig c;
    c.name = name;
    c.level = level;
    c.sets = sets;
    c.ways = ways;
    c.latency = latency;
    c.repl = ReplKind::Lru;  // the oracle models exact LRU only
    c.mshrs = 8;
    c.rqSize = 16;
    c.wqSize = 16;
    c.pqSize = 8;
    return c;
}

/** The serialized cycle-side hierarchy. */
struct SimHierarchy
{
    explicit SimHierarchy(const DiffConfig &cfg)
        : mem(&clock, cfg.memLatency),
          llc(levelConfig("diff-llc", 3, cfg.llcSets, cfg.llcWays, 6),
              &clock),
          l2(levelConfig("diff-l2", 2, cfg.l2Sets, cfg.l2Ways, 4),
             &clock),
          l1(levelConfig("diff-l1d", 1, cfg.l1Sets, cfg.l1Ways, 2),
             &clock)
    {
        llc.setLower(&mem);
        l2.setLower(&llc);
        l1.setLower(&l2);
    }

    void
    tickOnce()
    {
        // Machine order: memory responds first, then LLC -> L2 -> L1 so
        // responses propagate upward within the cycle.
        ++clock;
        mem.tick();
        llc.tick();
        l2.tick();
        l1.tick();
    }

    bool
    drained() const
    {
        return mem.idle() && l1.mshrsInUse() == 0 &&
               l2.mshrsInUse() == 0 && llc.mshrsInUse() == 0 &&
               l1.rqOccupancy() == 0 && l2.rqOccupancy() == 0 &&
               llc.rqOccupancy() == 0 && l1.wqOccupancy() == 0 &&
               l2.wqOccupancy() == 0 && llc.wqOccupancy() == 0;
    }

    Cycle clock = 0;
    BackingMemory mem;
    Cache llc;
    Cache l2;
    Cache l1;
};

/** First mismatching functional counter between one sim level and its
 *  reference, or empty when they agree. */
std::string
compareLevel(const char *name, const Cache &sim, const RefCache &ref)
{
    struct Pair
    {
        const char *field;
        std::uint64_t simv;
        std::uint64_t refv;
    };
    const Pair pairs[] = {
        {"demand_accesses", sim.stats.demandAccesses, ref.demandAccesses},
        {"demand_hits", sim.stats.demandHits, ref.demandHits},
        {"demand_misses", sim.stats.demandMisses, ref.demandMisses},
        {"mshr_merged", sim.stats.demandMshrMerged, 0},
        {"writebacks", sim.stats.writebacks, ref.writebacksOut},
        {"fills", sim.stats.fills, ref.fills},
    };
    for (const Pair &p : pairs) {
        if (p.simv != p.refv) {
            std::ostringstream os;
            os << name << "." << p.field << ": sim " << p.simv
               << " vs oracle " << p.refv;
            return os.str();
        }
    }
    return {};
}

std::string
compareAllLevels(const SimHierarchy &sim, const RefHierarchy &ref)
{
    std::string m = compareLevel("l1d", sim.l1, ref.l1());
    if (m.empty())
        m = compareLevel("l2", sim.l2, ref.l2());
    if (m.empty())
        m = compareLevel("llc", sim.llc, ref.llc());
    return m;
}

} // namespace

RefHierarchyConfig
DiffConfig::refConfig() const
{
    RefHierarchyConfig rc;
    rc.l1 = {"ref-l1d", l1Sets, l1Ways};
    rc.l2 = {"ref-l2", l2Sets, l2Ways};
    rc.llc = {"ref-llc", llcSets, llcWays};
    return rc;
}

DiffResult
runSerializedDiff(const MicroTrace &trace, const DiffConfig &cfg)
{
    SimHierarchy sim(cfg);
    RefHierarchy ref(cfg.refConfig());
    ref.l1().setPerturbation(cfg.perturbation);
    CollectingClient client;

    auto fail = [](std::size_t op, std::string msg) {
        DiffResult r;
        r.diverged = true;
        r.opIndex = op;
        r.message = std::move(msg);
        return r;
    };

    constexpr Cycle kOpCycleGuard = 100000;
    std::set<Addr> touched;

    for (std::size_t i = 0; i < trace.ops.size(); ++i) {
        const MicroOp &op = trace.ops[i];
        touched.insert(op.line);

        if (op.kind == MicroOpKind::Writeback) {
            sim.l1.submitWriteback(op.line);
            ref.demandWriteback(op.line);
        } else {
            MemRequest req;
            req.vLine = op.line;
            req.pLine = op.line;
            req.ip = op.ip;
            req.type = op.kind == MicroOpKind::Rfo ? AccessType::Rfo
                                                   : AccessType::Load;
            req.client = &client;
            std::uint64_t before = client.completed;
            if (!sim.l1.submitRead(req))
                return fail(i, "serialized submitRead refused");
            Cycle guard = 0;
            while (client.completed == before) {
                sim.tickOnce();
                if (++guard > kOpCycleGuard)
                    return fail(i, "demand access never completed");
            }
            ref.demandAccess(op.line,
                             op.kind == MicroOpKind::Rfo);
        }

        // Run the machine idle so every victim writeback and
        // write-allocate lands before the next op (the serialization
        // that makes untimed agreement exact).
        Cycle guard = 0;
        while (!sim.drained()) {
            sim.tickOnce();
            if (++guard > kOpCycleGuard)
                return fail(i, "hierarchy never drained after op");
        }

        std::string mismatch = compareAllLevels(sim, ref);
        if (!mismatch.empty())
            return fail(i, "stats diverged after op: " + mismatch);
    }

    // Final-state comparison: contents + dirty bits over every line the
    // trace could have made resident, and the backing writeback order.
    for (Addr line : touched) {
        struct LevelPair
        {
            const char *name;
            const Cache *sim;
            const RefCache *ref;
        };
        const LevelPair levels[] = {
            {"l1d", &sim.l1, &ref.l1()},
            {"l2", &sim.l2, &ref.l2()},
            {"llc", &sim.llc, &ref.llc()},
        };
        for (const LevelPair &lv : levels) {
            bool sim_has = lv.sim->probe(line);
            bool ref_has = lv.ref->contains(line);
            if (sim_has != ref_has) {
                std::ostringstream os;
                os << lv.name << " contents diverged for line 0x"
                   << std::hex << line << ": sim " << (sim_has ? "has" : "lacks")
                   << " it, oracle " << (ref_has ? "has" : "lacks") << " it";
                return fail(trace.ops.size(), os.str());
            }
            if (sim_has &&
                lv.sim->probeDirty(line) != lv.ref->isDirty(line)) {
                std::ostringstream os;
                os << lv.name << " dirty bit diverged for line 0x"
                   << std::hex << line;
                return fail(trace.ops.size(), os.str());
            }
        }
    }

    if (sim.mem.writebacks != ref.memoryWritebacks()) {
        std::ostringstream os;
        os << "backing writeback sequence diverged: sim "
           << sim.mem.writebacks.size() << " lines vs oracle "
           << ref.memoryWritebacks().size();
        return fail(trace.ops.size(), os.str());
    }
    if (sim.mem.reads != ref.memoryReads) {
        std::ostringstream os;
        os << "backing reads diverged: sim " << sim.mem.reads
           << " vs oracle " << ref.memoryReads;
        return fail(trace.ops.size(), os.str());
    }

    return {};
}

SerializedRunStats
runSerializedWithPrefetchers(const MicroTrace &trace,
                             const DiffConfig &cfg,
                             std::unique_ptr<Prefetcher> l1_pf,
                             std::unique_ptr<Prefetcher> l2_pf)
{
    SerializedRunStats out;
    SimHierarchy sim(cfg);
    if (l1_pf)
        sim.l1.setPrefetcher(std::move(l1_pf));
    if (l2_pf)
        sim.l2.setPrefetcher(std::move(l2_pf));
    CollectingClient client;

    auto wedge = [&](const char *msg) {
        out.wedged = true;
        out.message = msg;
    };

    constexpr Cycle kOpCycleGuard = 100000;
    // A prefetcher may legally keep queues busy indefinitely, so after
    // each op the hierarchy gets a bounded settle window instead of the
    // strict drain the oracle comparison requires.
    constexpr Cycle kSettleWindow = 600;

    for (const MicroOp &op : trace.ops) {
        if (op.kind == MicroOpKind::Writeback) {
            sim.l1.submitWriteback(op.line);
        } else {
            MemRequest req;
            req.vLine = op.line;
            req.pLine = op.line;
            req.ip = op.ip;
            req.type = op.kind == MicroOpKind::Rfo ? AccessType::Rfo
                                                   : AccessType::Load;
            req.client = &client;
            ++out.demandOps;
            std::uint64_t before = client.completed;
            Cycle guard = 0;
            while (!sim.l1.submitRead(req)) {
                sim.tickOnce();
                if (++guard > kOpCycleGuard) {
                    wedge("read queue never accepted demand");
                    return out;
                }
            }
            guard = 0;
            while (client.completed == before) {
                sim.tickOnce();
                if (++guard > kOpCycleGuard) {
                    wedge("demand access never completed");
                    return out;
                }
            }
        }
        for (Cycle c = 0; c < kSettleWindow && !sim.drained(); ++c)
            sim.tickOnce();
    }

    Cycle guard = 0;
    while (!sim.drained()) {
        sim.tickOnce();
        if (++guard > kOpCycleGuard)
            break;  // a still-busy prefetch queue is not a failure
    }

    out.l1 = sim.l1.stats;
    out.l2 = sim.l2.stats;
    out.llc = sim.llc.stats;
    out.completed = client.completed;
    return out;
}

ConcurrentResult
runConcurrent(const MicroTrace &trace, const DiffConfig &cfg)
{
    ConcurrentResult result;
    Cycle clock = 0;
    BackingMemory mem(&clock, cfg.memLatency);
    Cache cache(levelConfig("race-l1d", 1, cfg.l1Sets, cfg.l1Ways, 2),
                &clock);
    cache.setLower(&mem);

    verify::AuditConfig acfg;
    acfg.enabled = true;
    acfg.interval = 1;  // every cycle: races checked at full resolution
    verify::SimAuditor audit(acfg, &clock);
    audit.attach(&cache);

    CollectingClient client;
    std::uint64_t demand_ops = 0;

    auto tick_once = [&] {
        ++clock;
        mem.tick();
        cache.tick();
        audit.tick();
    };

    try {
        for (const MicroOp &op : trace.ops) {
            for (unsigned g = 0; g < op.gap; ++g)
                tick_once();
            if (op.kind == MicroOpKind::Writeback) {
                cache.submitWriteback(op.line);
                continue;
            }
            MemRequest req;
            req.vLine = op.line;
            req.pLine = op.line;
            req.ip = op.ip;
            req.type = op.kind == MicroOpKind::Rfo ? AccessType::Rfo
                                                   : AccessType::Load;
            req.client = &client;
            ++demand_ops;
            Cycle guard = 0;
            while (!cache.submitRead(req)) {
                tick_once();
                if (++guard > 100000)
                    throw verify::SimError(verify::ErrorKind::Watchdog,
                                           "race-driver",
                                           "read queue never drained");
            }
        }

        Cycle guard = 0;
        while (!mem.idle() || cache.mshrsInUse() != 0 ||
               cache.rqOccupancy() != 0 || cache.wqOccupancy() != 0) {
            tick_once();
            if (++guard > 200000)
                throw verify::SimError(verify::ErrorKind::Watchdog,
                                       "race-driver",
                                       "cache never drained after trace");
        }
        audit.checkNow();
    } catch (const verify::SimError &e) {
        result.failed = true;
        result.message = e.what();
        if (!e.diagnostic().empty())
            result.message += "\n" + e.diagnostic();
        return result;
    }

    const CacheStats &s = cache.stats;
    result.demandAccesses = s.demandAccesses;
    result.demandHits = s.demandHits;
    result.demandMisses = s.demandMisses;
    result.demandMerged = s.demandMshrMerged;
    if (s.demandAccesses !=
        s.demandHits + s.demandMisses + s.demandMshrMerged) {
        result.failed = true;
        result.message = "stats algebra violated after drain";
        return result;
    }
    if (client.completed != demand_ops) {
        result.failed = true;
        result.message = "lost demand completions: " +
                         std::to_string(client.completed) + " of " +
                         std::to_string(demand_ops);
    }
    return result;
}

} // namespace berti::oracle
