/**
 * @file
 * Dynamic-energy model of the memory hierarchy. Per-access energies for
 * tag/data reads and writes at each cache level and per-64B DRAM
 * operation, in the spirit of CACTI-P at 22 nm plus the Micron DRAM
 * power calculator (the tools the paper uses). The paper reports energy
 * *normalised to no prefetching*, so relative consistency of these
 * constants is what matters, not their absolute calibration.
 */

#ifndef BERTI_ENERGY_ENERGY_MODEL_HH
#define BERTI_ENERGY_ENERGY_MODEL_HH

#include "sim/stats.hh"

namespace berti
{

/** Per-operation dynamic energies in picojoules. */
struct EnergyParams
{
    // 48 KB L1D / 32 KB L1I class arrays.
    double l1TagRead = 1.5;
    double l1TagWrite = 1.7;
    double l1DataRead = 18.0;
    double l1DataWrite = 20.0;

    // 512 KB L2.
    double l2TagRead = 3.5;
    double l2TagWrite = 4.0;
    double l2DataRead = 75.0;
    double l2DataWrite = 85.0;

    // 2 MB LLC slice.
    double llcTagRead = 8.0;
    double llcTagWrite = 9.0;
    double llcDataRead = 240.0;
    double llcDataWrite = 260.0;

    // DRAM, per 64 B transfer (activation amortised, open-page).
    double dramRead = 15000.0;
    double dramWrite = 15500.0;
};

/** Energy breakdown in nanojoules. */
struct EnergyBreakdown
{
    double l1 = 0.0;
    double l2 = 0.0;
    double llc = 0.0;
    double dram = 0.0;

    double total() const { return l1 + l2 + llc + dram; }
};

class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {});

    /** Dynamic energy of a run, from the access counters. */
    EnergyBreakdown evaluate(const RunStats &stats) const;

  private:
    EnergyParams p;
};

} // namespace berti

#endif // BERTI_ENERGY_ENERGY_MODEL_HH
