#include "energy/energy_model.hh"

namespace berti
{

EnergyModel::EnergyModel(const EnergyParams &params) : p(params)
{}

EnergyBreakdown
EnergyModel::evaluate(const RunStats &s) const
{
    auto cache_energy = [](const CacheStats &c, double tr, double tw,
                           double dr, double dw) {
        return (static_cast<double>(c.tagReads) * tr +
                static_cast<double>(c.tagWrites) * tw +
                static_cast<double>(c.dataReads) * dr +
                static_cast<double>(c.dataWrites) * dw) / 1000.0;  // nJ
    };

    EnergyBreakdown out;
    out.l1 = cache_energy(s.l1d, p.l1TagRead, p.l1TagWrite, p.l1DataRead,
                          p.l1DataWrite) +
             cache_energy(s.l1i, p.l1TagRead, p.l1TagWrite, p.l1DataRead,
                          p.l1DataWrite);
    out.l2 = cache_energy(s.l2, p.l2TagRead, p.l2TagWrite, p.l2DataRead,
                          p.l2DataWrite);
    out.llc = cache_energy(s.llc, p.llcTagRead, p.llcTagWrite,
                           p.llcDataRead, p.llcDataWrite);
    out.dram = (static_cast<double>(s.dram.reads) * p.dramRead +
                static_cast<double>(s.dram.writes) * p.dramWrite) / 1000.0;
    return out;
}

} // namespace berti
