/**
 * @file
 * Parallel simulation runner: a fixed-size worker pool that fans the
 * independent (workload, spec) cells of a suite or matrix out across
 * threads. Every job builds its own Machine and trace generator from
 * the workload's factory, so results are bit-identical to the serial
 * path regardless of thread count.
 *
 * Contract:
 *  - Result ordering always matches input ordering; the schedule never
 *    leaks into the output.
 *  - Worker failures are captured and the first one *in input order* is
 *    rethrown after all jobs finish, so a verify::SimError thrown by a
 *    simulation surfaces to the caller with its kind/diagnostic intact.
 *  - The pool size defaults to std::thread::hardware_concurrency() and
 *    can be overridden with the BERTI_JOBS environment variable; a
 *    malformed BERTI_JOBS is a verify::SimError(ErrorKind::Config).
 *  - SimParams::faults points at a shared mutable FaultInjector, whose
 *    injection sequence would depend on thread interleaving; jobs with
 *    a fault injector therefore run serially (effective pool size 1).
 */

#ifndef BERTI_HARNESS_PARALLEL_HH
#define BERTI_HARNESS_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace berti
{

/**
 * Observer for job completion, called after each finished job. Calls
 * are serialized by the pool (never concurrent), but may come from any
 * worker thread and in any completion order; `done` is the number of
 * jobs finished so far and is strictly increasing across calls.
 */
using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

/**
 * Worker-pool size: BERTI_JOBS when set (must be a positive integer,
 * else throws verify::SimError(ErrorKind::Config)), otherwise
 * hardware_concurrency(), with a floor of 1.
 */
unsigned parallelJobCount();

/**
 * Run fn(0), ..., fn(total - 1) on a pool of `jobs` worker threads
 * (0 = parallelJobCount()). All indices run even if some fail; after
 * the pool drains, the failure with the smallest index is rethrown.
 * This is the scheduling primitive under runSuiteParallel and
 * runMatrixParallel; benches with bespoke loops (multi-core mixes,
 * custom machine configs) can use it directly.
 */
void forEachIndexParallel(std::size_t total,
                          const std::function<void(std::size_t)> &fn,
                          unsigned jobs = 0,
                          const ProgressFn &progress = {});

/**
 * Parallel drop-in for runSuite: results[i] = simulate(workloads[i],
 * spec) with each workload an independent job. Bit-identical to
 * runSuite for any jobs value.
 */
std::vector<SimResult>
runSuiteParallel(const std::vector<Workload> &workloads,
                 const PrefetcherSpec &spec, const SimParams &params = {},
                 unsigned jobs = 0, const ProgressFn &progress = {});

/**
 * Full matrix: out[s][w] = simulate(workloads[w], specs[s]). Every
 * (workload, spec) cell is an independent job, so a matrix keeps the
 * pool saturated even when individual suites are short.
 */
std::vector<std::vector<SimResult>>
runMatrixParallel(const std::vector<Workload> &workloads,
                  const std::vector<PrefetcherSpec> &specs,
                  const SimParams &params = {}, unsigned jobs = 0,
                  const ProgressFn &progress = {});

/**
 * A ProgressFn that renders `[bench] <label> done/total` on stderr,
 * rewriting the line in place and finishing it with a newline. Safe to
 * hand to the pool: the pool serializes progress calls.
 */
ProgressFn stderrProgress(std::string label);

} // namespace berti

#endif // BERTI_HARNESS_PARALLEL_HH
