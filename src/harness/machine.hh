/**
 * @file
 * Machine: assembles cores, private cache hierarchies, a shared LLC and
 * DRAM into the Table II (Sunny Cove-like) system, and steps the whole
 * thing cycle by cycle.
 */

#ifndef BERTI_HARNESS_MACHINE_HH
#define BERTI_HARNESS_MACHINE_HH

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "mem/backend_registry.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "sim/options.hh"
#include "sim/stats.hh"
#include "trace/instr.hh"
#include "verify/auditor.hh"
#include "verify/watchdog.hh"
#include "vm/tlb.hh"

namespace berti
{

namespace verify
{
class FaultInjector;
} // namespace verify

/** Factory for per-core prefetcher instances. */
using PrefetcherFactory = std::function<std::unique_ptr<Prefetcher>()>;

/** Test hook: build the memory backend yourself (scripted backends for
 *  the nextEventCycle() contract tests). Null = the registry builds
 *  from MachineConfig::memBackend + MachineConfig::dram. */
using MemBackendFactory =
    std::function<std::unique_ptr<mem::MemBackend>(const Cycle *clock)>;

struct MachineConfig
{
    unsigned cores = 1;
    CoreConfig core;
    CacheConfig l1i;
    CacheConfig l1d;
    CacheConfig l2;
    CacheConfig llc;      //!< sized per core at build time
    /** Per-channel DRAM timing/geometry (the whole backend when
     *  memBackend.channels == 1, which is the default). */
    DramConfig dram;
    /**
     * Memory-backend selection: the registry model that shaped `dram`
     * and the channel count the Machine builds (1 = a single Dram,
     * exactly the historical machine; > 1 = a line-interleaved
     * MultiChannelDram). Resolve both fields together from a spec
     * string via applyOptions() or mem::parseBackendSpec — setting
     * `dram` by hand on a single-channel machine also keeps working.
     */
    mem::BackendSel memBackend;
    /** Test hook overriding backend construction entirely (see
     *  MemBackendFactory); fingerprints still describe `dram`. */
    MemBackendFactory memBackendHook;
    TranslationUnit::Config tlb;
    PrefetcherFactory l1dPrefetcher;  //!< null = no L1D prefetcher
    PrefetcherFactory l2Prefetcher;   //!< null = no L2 prefetcher
    PrefetcherFactory l1iPrefetcher;  //!< null = no L1I prefetcher

    // ------------------------------------------------ simulator speed
    /** Quiescence cycle-skip (bit-identical results; BERTI_CYCLE_SKIP=0
     *  disables). See ARCHITECTURE.md, "Performance". */
    bool cycleSkip = sim::SimOptions::fromEnv().cycleSkip;

    // --------------------------------------------- observability layer
    /** Interval time-series sampling; off unless BERTI_OBS_INTERVAL. */
    obs::SamplerConfig sampler = obs::SamplerConfig::fromEnv();
    /** Prefetch event tracing; off unless BERTI_OBS_PFTRACE. */
    obs::TraceConfig pfTrace = obs::TraceConfig::fromEnv();

    // ------------------------------------------------ hardening layer
    /** Invariant checking; defaults honour BERTI_VERIFY=1 so CI audits
     *  every existing test without modifying it. */
    verify::AuditConfig audit = verify::AuditConfig::fromEnv();
    /** Forward-progress watchdog; enabled by default. */
    verify::WatchdogConfig watchdog;
    /** Optional fault injection; must outlive the Machine. */
    verify::FaultInjector *faults = nullptr;

    /**
     * Wall-clock budget for the whole Machine lifetime, in milliseconds
     * (0 = unlimited). When set, run() probes the elapsed real time
     * every few thousand cycles and throws
     * verify::SimError(ErrorKind::Timeout) once the budget is spent —
     * the supervised-sweep deadline mechanism (see
     * harness/supervisor.hh). The probe period is a power-of-two cycle
     * count, so enabling a budget never perturbs simulated behaviour.
     */
    std::uint64_t wallClockBudgetMs = 0;

    /**
     * The paper's baseline system (Table II): 352-entry ROB 6-issue
     * 4-retire core; 32 KB L1I; 48 KB 12-way 5-cycle L1D with 16 MSHRs;
     * 512 KB 8-way 10-cycle SRRIP L2; 2 MB/core 16-way 20-cycle DRRIP
     * LLC; one DDR5-6400 channel per 4 cores.
     */
    static MachineConfig sunnyCove(unsigned cores = 1);

    /**
     * Re-derive every options-driven field (sampler, pfTrace, audit,
     * cycleSkip, and — when opt.memBackend is set — the memory
     * backend, resolved through the same mem::parseBackendSpec grammar
     * machineConfigFor uses) from one already-parsed options value
     * instead of the per-field environment defaults — the hook benches
     * use to thread CLI-overridden SimOptions through to the Machine.
     * An unknown backend spec throws
     * verify::SimError(ErrorKind::Config) naming the string.
     */
    void applyOptions(const sim::SimOptions &opt);
};

class Machine
{
  public:
    /**
     * Build the machine. The pointers must outlive the Machine. Throws
     * verify::SimError(ErrorKind::Config) when the configuration is
     * structurally invalid (generator count != cores, zero cores, bad
     * cache geometry, mis-wired prefetcher) — always-on validation.
     */
    Machine(const MachineConfig &cfg,
            std::vector<TraceGenerator *> generators);

    /**
     * Run until every core has retired at least target_instructions
     * *more* instructions than at call time. Finished cores keep
     * executing (their trace replays), as in the paper's multi-core
     * methodology; per-core statistics snapshots are taken the moment
     * each core reaches its target.
     *
     * When the forward-progress watchdog is enabled (default) and a
     * core's ROB head wedges — e.g. a leaked MSHR swallowed a load
     * response — run() throws verify::SimError(ErrorKind::Watchdog)
     * whose diagnostic() carries the structured state dump, instead of
     * spinning to the hard cycle bound.
     */
    void run(std::uint64_t target_instructions);

    /**
     * Structured state dump: per-core ROB/fetch-buffer state, queue
     * occupancies and in-flight MSHRs (with ages) of every cache level,
     * DRAM queues, and each L1D prefetcher's debugState().
     */
    std::string diagnostic() const;

    /** The invariant checker, when cfg.audit.enabled (else null). */
    verify::SimAuditor *auditor() { return audit.get(); }

    /** Per-core statistics snapshot taken when the core hit its target
     *  in the most recent run() (or live stats before any run). */
    RunStats coreSnapshot(unsigned core_id) const;

    /** Live statistics right now. */
    RunStats liveStats(unsigned core_id) const;

    /**
     * Machine-wide live statistics: core-private structures summed over
     * all cores, the shared LLC/DRAM counted once, cycles = wall clock.
     */
    RunStats aggregateStats() const;

    /**
     * The per-Machine metrics registry. Every component registered its
     * counters, derived gauges and histograms here at construction,
     * under "c<N>." per-core prefixes plus shared "llc." / "dram." /
     * "machine." / "energy." names.
     */
    obs::MetricsRegistry &metrics() { return metricsReg; }
    const obs::MetricsRegistry &metrics() const { return metricsReg; }

    /** Materialised snapshot of every registered metric, right now. */
    obs::MetricsSnapshot metricsSnapshot() const
    {
        return metricsReg.snapshot();
    }

    /** The interval time-series, when cfg.sampler.interval (else null). */
    const obs::IntervalSeries *intervalSeries() const
    {
        return sampler ? &sampler->series() : nullptr;
    }

    /** Core's prefetch event trace, when cfg.pfTrace (else null). */
    const obs::PrefetchEventTrace *prefetchTrace(unsigned core_id) const
    {
        return ptraces.empty() ? nullptr : ptraces[core_id].get();
    }

    Cycle cycle() const { return clock; }

    // ------------------------------------------------------ checkpoints
    // Implemented in harness/checkpoint.cc; see ARCHITECTURE.md, "Crash
    // safety & resume" for the blob format and versioning rules.

    /**
     * Whether this machine can be checkpointed: every attached
     * prefetcher must support state serialization and fault injection
     * must be off (the injector's RNG is owned by the caller and not
     * restorable). When it returns false and `why` is non-null, `why`
     * receives the blocking reason.
     */
    bool checkpointSupported(std::string *why = nullptr) const;

    /**
     * Configuration fingerprint folded into every checkpoint header:
     * core count, cache geometries, DRAM/TLB parameters and attached
     * prefetcher names. Resuming on a machine with a different
     * fingerprint throws — a checkpoint is only meaningful on the
     * topology that wrote it.
     */
    std::uint64_t configFingerprint() const;

    /**
     * Serialize the complete architectural + statistics state into a
     * self-validating versioned blob (magic, format version, config
     * fingerprint, payload, FNV-1a-64 checksum). Deterministic: the
     * same machine state always yields byte-identical blobs, and a
     * restored machine re-serializes to the same bytes.
     */
    std::string saveCheckpointBlob() const;

    /** saveCheckpointBlob() written atomically (temp file + rename). */
    void saveCheckpoint(const std::string &path) const;

    /**
     * Restore a blob into this machine. The machine must be *pristine*
     * (freshly constructed, never run) and built with the same
     * configuration and equivalent trace generators as the saver: the
     * generators are not serialized, they are replayed (deterministic
     * streams) to re-synchronise their positions. Throws
     * verify::SimError(ErrorKind::Checkpoint) on a truncated, corrupt,
     * version- or config-incompatible blob, leaving no partial state
     * applied before validation completes. Runs a full auditor pass
     * after restore when auditing is enabled.
     */
    void resumeFromBlob(const std::string &blob);

    /** resumeFromBlob() on the contents of `path`. */
    void resumeFrom(const std::string &path);

    /** Cycles fast-forwarded by the quiescence skip in run() so far
     *  (0 when cfg.cycleSkip is off). Simulated time is unaffected —
     *  this is purely a wall-time diagnostic for the perf harness. */
    std::uint64_t skippedCycles() const { return cyclesSkipped; }

    Cache &l1d(unsigned core_id) { return *nodes[core_id]->l1dCache; }
    Cache &l2(unsigned core_id) { return *nodes[core_id]->l2Cache; }
    Cache &sharedLlc() { return *llc; }
    Core &core(unsigned core_id) { return *nodes[core_id]->cpu; }
    TranslationUnit &translation(unsigned core_id)
    {
        return *nodes[core_id]->tu;
    }

  private:
    struct CoreNode
    {
        std::unique_ptr<TranslationUnit> tu;
        std::unique_ptr<Cache> l1iCache;
        std::unique_ptr<Cache> l1dCache;
        std::unique_ptr<Cache> l2Cache;
        std::unique_ptr<Core> cpu;
    };

    MachineConfig cfg;
    Cycle clock = 0;
    /** Generators, retained for checkpoint-resume replay. */
    std::vector<TraceGenerator *> gens;
    /** Construction time, the wall-clock deadline's epoch. */
    std::chrono::steady_clock::time_point bornAt;
    std::uint64_t deadlineProbe = 0;
    // Declared before the components so it outlives none of them while
    // they register; it stores raw pointers into them, never owning.
    obs::MetricsRegistry metricsReg;
    std::vector<std::unique_ptr<obs::PrefetchEventTrace>> ptraces;
    std::unique_ptr<mem::MemBackend> dram;
    std::unique_ptr<Cache> llc;
    std::vector<std::unique_ptr<CoreNode>> nodes;
    std::vector<RunStats> snapshots;
    std::unique_ptr<verify::SimAuditor> audit;
    verify::ProgressWatchdog watchdog;
    std::unique_ptr<obs::IntervalSampler> sampler;
    std::uint64_t cyclesSkipped = 0;
    // Quiescence-probe backoff: scanning every component each tick is
    // pure overhead while the machine is busy, so failed probes back
    // off exponentially (capped). Skipping later (or less) than
    // possible is always safe — only *which* cycles are provably idle
    // matters for invariance, not when we notice.
    Cycle skipBackoff = 1;
    Cycle skipProbeAt = 0;
    // run()-loop scratch, preallocated so the run loop itself stays
    // allocation-free.
    std::vector<std::uint64_t> runTargets;
    std::vector<char> runDone;

    void tick();

    /**
     * Earliest future cycle at which any component would do work given
     * no new input (kNever when everything is drained). The min over
     * every cache, core and the DRAM controller's own bounds.
     */
    Cycle nextInterestingCycle() const;

    /** Jump the clock forward over provably idle cycles, keeping the
     *  per-core cycle counters in lockstep (an idle tick's only effect). */
    void fastForward(Cycle cycles);

    void registerAllMetrics();

    [[noreturn]] void failWedged(unsigned core_id);

    // Checkpoint internals (harness/checkpoint.cc).
    sim::PtrMap clientMap() const;
    void savePayload(sim::ByteWriter &w, const sim::PtrMap &clients) const;
    void loadPayload(sim::ByteReader &r, const sim::PtrMap &clients);
};

} // namespace berti

#endif // BERTI_HARNESS_MACHINE_HH
