/**
 * @file
 * Checkpoint file format constants. The serialization itself lives in
 * Machine::saveCheckpointBlob / resumeFromBlob (checkpoint.cc); the
 * layout and versioning rules are documented in ARCHITECTURE.md,
 * "Crash safety & resume".
 *
 * Blob layout (everything little-endian, fixed width):
 *
 *   u64  magic            "BERTICKP"
 *   u32  format version   kCheckpointVersion
 *   u64  config fingerprint (Machine::configFingerprint())
 *   u32  core count
 *   ...  payload          per-component sections with sanity tags
 *   u64  FNV-1a-64 checksum over every preceding byte
 *
 * The checksum is verified before any payload field is parsed, so a
 * torn or bit-flipped checkpoint is rejected as a whole — partially
 * applying a corrupt checkpoint is impossible by construction.
 *
 * Versioning rule: ANY change to the payload layout — a new field, a
 * reordered section, a widened counter — bumps kCheckpointVersion.
 * There is deliberately no cross-version migration: checkpoints are
 * short-lived crash-recovery artefacts, not archival data, and a
 * version mismatch throws a typed error telling the caller to re-run.
 */

#ifndef BERTI_HARNESS_CHECKPOINT_HH
#define BERTI_HARNESS_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>

namespace berti::harness
{

/** "BERTICKP" read as a little-endian u64. */
constexpr std::uint64_t kCheckpointMagic = 0x504b434954524542ull;

/** Current checkpoint format version; bump on any layout change.
 *  v2: pluggable memory backends — the DRAM section gained the
 *  FR-FCFS starvation-cap bypass counter, multi-channel backends wrap
 *  per-channel sections in their own tags, and the config fingerprint
 *  folds the backend model/scheduler/geometry. */
constexpr std::uint32_t kCheckpointVersion = 2;

/** Bytes of header before the payload (magic + version + fingerprint
 *  + core count) and of the trailing checksum. */
constexpr std::size_t kCheckpointHeaderBytes = 8 + 4 + 8 + 4;
constexpr std::size_t kCheckpointChecksumBytes = 8;

} // namespace berti::harness

#endif // BERTI_HARNESS_CHECKPOINT_HH
