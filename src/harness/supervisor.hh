/**
 * @file
 * Supervised sweep execution: the crash-safe layer over the worker
 * pool. Every (workload, spec) cell of a matrix gets
 *
 *  - a result-store lookup first, so interrupted sweeps resume from
 *    the cells that already completed,
 *  - a wall-clock deadline (SimParams::wallClockBudgetMs, enforced
 *    inside Machine::run as a typed Timeout error),
 *  - bounded retries with exponential backoff on any SimError,
 *  - quarantine after the attempts are exhausted: the failure is
 *    recorded as a typed per-cell error plus an on-disk marker, and
 *    the rest of the matrix keeps running — graceful degradation,
 *    never a lost sweep.
 *
 * The supervisor state machine per cell:
 *
 *   quarantined marker present and !rerunFailed -> SkippedQuarantined
 *   store hit                                   -> FromStore
 *   attempt 1..maxAttempts (backoff between)    -> Computed on success
 *   attempts exhausted                          -> Quarantined (marker)
 */

#ifndef BERTI_HARNESS_SUPERVISOR_HH
#define BERTI_HARNESS_SUPERVISOR_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/result_store.hh"
#include "verify/sim_error.hh"

namespace berti::harness
{

/** How one supervised cell reached its final state. */
enum class CellOutcome : std::uint8_t
{
    Computed,            //!< simulated (possibly after retries)
    FromStore,           //!< served from the result store
    Quarantined,         //!< all attempts failed; marker written
    SkippedQuarantined   //!< marker from an earlier sweep, not rerun
};

const char *cellOutcomeName(CellOutcome outcome);

/** Final state of one (workload, spec) cell. */
struct CellResult
{
    std::string workload;
    std::string spec;
    CellOutcome outcome = CellOutcome::Computed;
    SimResult result;          //!< meaningful when ok()
    unsigned attempts = 0;     //!< simulation attempts actually made
    std::uint64_t backoffMsTotal = 0;

    /** Last failure, when outcome is (Skipped)Quarantined. SimError is
     *  not default-constructible, so the fields travel unpacked. */
    struct Error
    {
        bool has = false;
        verify::ErrorKind kind = verify::ErrorKind::Worker;
        std::string component;
        std::string reason;
    } error;

    bool ok() const
    {
        return outcome == CellOutcome::Computed ||
               outcome == CellOutcome::FromStore;
    }
};

struct SupervisorConfig
{
    /** Simulation attempts per cell before quarantine (>= 1). */
    unsigned maxAttempts = 3;

    /** Backoff before retry k (1-based) is
     *  min(backoffBaseMs << (k - 1), backoffMaxMs), computed
     *  overflow-safely: any base/shift combination that would wrap
     *  saturates at backoffMaxMs. */
    std::uint64_t backoffBaseMs = 10;
    std::uint64_t backoffMaxMs = 2000;

    /** Optional result store (null = recompute everything). Refused
     *  (typed Config error) when the SimParams carry a fault injector:
     *  fault-perturbed results would share store keys with clean runs
     *  and poison the cache. */
    const ResultStore *store = nullptr;

    /** Retry cells an earlier sweep quarantined (clears their markers
     *  first) instead of skipping them. */
    bool rerunFailed = false;

    /** Worker threads (0 = parallelJobCount()); forced to 1 when the
     *  SimParams carry a fault injector, matching the pool's rule. */
    unsigned jobs = 0;

    ProgressFn progress;

    /**
     * Test hook, called before every simulation attempt with (workload,
     * spec, 1-based attempt). A throw from here counts as that
     * attempt's failure — how the tests script "fails N times, then
     * succeeds" and "always crashes" cells without touching the
     * simulator.
     */
    std::function<void(const std::string &workload,
                       const std::string &spec, unsigned attempt)>
        preAttempt;
};

/** Outcome of a whole supervised matrix. */
struct SweepReport
{
    std::vector<std::string> workloads;
    std::vector<std::string> specs;

    /** cells[s][w] matches specs[s] x workloads[w]. */
    std::vector<std::vector<CellResult>> cells;

    std::size_t computed = 0;
    std::size_t fromStore = 0;
    std::size_t quarantined = 0;
    std::size_t skippedQuarantined = 0;

    bool allOk() const { return quarantined + skippedQuarantined == 0; }

    /** One-line human summary, e.g. "12 computed, 3 from store, ...". */
    std::string summary() const;
};

/**
 * Run specs x workloads under supervision. Partial results by design:
 * a deterministically crashing cell ends up Quarantined with its typed
 * error while every other cell completes normally — the call only
 * throws for structural misuse (maxAttempts == 0), never for cell
 * failures.
 */
SweepReport runSupervisedMatrix(const std::vector<Workload> &workloads,
                                const std::vector<PrefetcherSpec> &specs,
                                const SimParams &params = {},
                                const SupervisorConfig &config = {});

} // namespace berti::harness

#endif // BERTI_HARNESS_SUPERVISOR_HH
