#include "harness/supervisor.hh"

#include <chrono>
#include <thread>

namespace berti::harness
{

namespace
{

std::uint64_t
backoffForAttempt(const SupervisorConfig &cfg, unsigned attempt)
{
    // Backoff before retry `attempt` (2-based: no wait before the
    // first attempt): base << (attempt - 2), capped. The shift can wrap
    // std::uint64_t long before shift 63 when the base is large (e.g.
    // base 1000 ms has wrapped to 0 by shift 61), which would collapse
    // the capped backoff to near zero — so test the cap *before*
    // shifting, with the division-form comparison that cannot overflow.
    std::uint64_t shift = attempt - 2;
    if (shift >= 63 || cfg.backoffBaseMs > (cfg.backoffMaxMs >> shift))
        return cfg.backoffMaxMs;
    return cfg.backoffBaseMs << shift;
}

void
recordError(CellResult &cell, const verify::SimError &e)
{
    cell.error.has = true;
    cell.error.kind = e.kind();
    cell.error.component = e.component();
    cell.error.reason = e.reason();
}

/** Run one cell through the supervisor state machine. */
CellResult
superviseCell(const Workload &workload, const PrefetcherSpec &spec,
              const SimParams &params, const SupervisorConfig &cfg)
{
    CellResult cell;
    cell.workload = workload.name;
    cell.spec = spec.name;

    StoreKey key = makeStoreKey(workload, spec.name, params);

    if (cfg.store) {
        auto quarantine = cfg.store->loadQuarantine(key);
        if (quarantine) {
            if (!cfg.rerunFailed) {
                cell.outcome = CellOutcome::SkippedQuarantined;
                cell.error.has = true;
                cell.error.kind = verify::ErrorKind::Worker;
                cell.error.component = "Supervisor";
                cell.error.reason = "quarantined by an earlier sweep: " +
                                    *quarantine;
                return cell;
            }
            cfg.store->clearQuarantine(key);
        }

        if (auto cached = cfg.store->load(key)) {
            cell.outcome = CellOutcome::FromStore;
            cell.result = resultFromSnapshot(*cached);
            return cell;
        }
    }

    for (unsigned attempt = 1; attempt <= cfg.maxAttempts; ++attempt) {
        if (attempt > 1) {
            std::uint64_t ms = backoffForAttempt(cfg, attempt);
            cell.backoffMsTotal += ms;
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        }
        ++cell.attempts;
        try {
            if (cfg.preAttempt)
                cfg.preAttempt(workload.name, spec.name, attempt);
            cell.result = simulate(workload, spec, params);
            cell.outcome = CellOutcome::Computed;
            if (cfg.store)
                cfg.store->store(key, resultSnapshot(cell.result));
            return cell;
        } catch (const verify::SimError &e) {
            recordError(cell, e);
        } catch (const std::exception &e) {
            cell.error.has = true;
            cell.error.kind = verify::ErrorKind::Worker;
            cell.error.component = "Supervisor";
            cell.error.reason = e.what();
        }
    }

    cell.outcome = CellOutcome::Quarantined;
    if (cfg.store) {
        cfg.store->markQuarantined(
            key, std::string(verify::errorKindName(cell.error.kind)) +
                     " after " + std::to_string(cell.attempts) +
                     " attempts: " + cell.error.reason);
    }
    return cell;
}

} // namespace

const char *
cellOutcomeName(CellOutcome outcome)
{
    switch (outcome) {
      case CellOutcome::Computed:
        return "computed";
      case CellOutcome::FromStore:
        return "from-store";
      case CellOutcome::Quarantined:
        return "quarantined";
      case CellOutcome::SkippedQuarantined:
        return "skipped-quarantined";
    }
    return "unknown";
}

std::string
SweepReport::summary() const
{
    return std::to_string(computed) + " computed, " +
           std::to_string(fromStore) + " from store, " +
           std::to_string(quarantined) + " quarantined, " +
           std::to_string(skippedQuarantined) + " skipped-quarantined";
}

SweepReport
runSupervisedMatrix(const std::vector<Workload> &workloads,
                    const std::vector<PrefetcherSpec> &specs,
                    const SimParams &params, const SupervisorConfig &config)
{
    if (config.maxAttempts == 0) {
        throw verify::SimError(verify::ErrorKind::Config, "Supervisor",
                               "maxAttempts must be at least 1");
    }
    if (config.store && params.faults) {
        // paramsFingerprint cannot see the injector's configuration or
        // RNG state, so a fault-perturbed cell would hash to the same
        // store key as a clean run — poisoning the cache for every
        // later clean sweep. Refuse the combination outright.
        throw verify::SimError(
            verify::ErrorKind::Config, "Supervisor",
            "a result store cannot be combined with fault injection: "
            "fault-perturbed results share store keys with clean runs "
            "and would be served to later clean sweeps — run fault "
            "campaigns without a store");
    }

    SweepReport report;
    for (const Workload &w : workloads)
        report.workloads.push_back(w.name);
    for (const PrefetcherSpec &s : specs)
        report.specs.push_back(s.name);
    report.cells.resize(specs.size());
    for (auto &row : report.cells)
        row.resize(workloads.size());

    // Matches the pool's determinism rule: a shared fault injector's
    // draw sequence must not depend on thread interleaving.
    unsigned jobs = params.faults ? 1 : config.jobs;

    std::size_t total = specs.size() * workloads.size();
    forEachIndexParallel(
        total,
        [&](std::size_t i) {
            std::size_t s = i / workloads.size();
            std::size_t w = i % workloads.size();
            report.cells[s][w] =
                superviseCell(workloads[w], specs[s], params, config);
        },
        jobs, config.progress);

    for (const auto &row : report.cells) {
        for (const CellResult &cell : row) {
            switch (cell.outcome) {
              case CellOutcome::Computed:
                ++report.computed;
                break;
              case CellOutcome::FromStore:
                ++report.fromStore;
                break;
              case CellOutcome::Quarantined:
                ++report.quarantined;
                break;
              case CellOutcome::SkippedQuarantined:
                ++report.skippedQuarantined;
                break;
            }
        }
    }
    return report;
}

} // namespace berti::harness
