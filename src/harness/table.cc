#include "harness/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace berti
{

TextTable::TextTable(std::vector<std::string> hdrs)
    : headers(std::move(hdrs))
{}

void
TextTable::addRow(std::vector<std::string> cells)
{
    cells.resize(headers.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << 100.0 * fraction
       << "%";
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers.size());
    for (std::size_t i = 0; i < headers.size(); ++i)
        width[i] = headers[i].size();
    for (const auto &row : rows) {
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(width[i]) + 2)
               << cells[i];
        }
        os << '\n';
    };
    emit(headers);
    std::vector<std::string> rule;
    for (std::size_t w : width)
        rule.push_back(std::string(w, '-'));
    emit(rule);
    for (const auto &row : rows)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                os << ',';
            // Quote cells containing the separator.
            if (cells[i].find(',') != std::string::npos)
                os << '"' << cells[i] << '"';
            else
                os << cells[i];
        }
        os << '\n';
    };
    emit(headers);
    for (const auto &row : rows)
        emit(row);
}

} // namespace berti
