#include "harness/experiment.hh"

#include "verify/sim_error.hh"

#include "prefetch/bingo.hh"
#include "prefetch/bop.hh"
#include "prefetch/ip_stride.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/misb.hh"
#include "prefetch/mlop.hh"
#include "prefetch/next_line.hh"
#include "prefetch/ppf.hh"
#include "prefetch/pythia.hh"
#include "prefetch/sms.hh"
#include "prefetch/spp.hh"
#include "prefetch/stream.hh"
#include "prefetch/vldp.hh"

namespace berti
{

namespace
{

PrefetcherFactory
factoryFor(const std::string &name)
{
    if (name == "none" || name.empty())
        return nullptr;
    if (name == "ip-stride")
        return [] { return std::make_unique<IpStridePrefetcher>(); };
    if (name == "next-line")
        return [] { return std::make_unique<NextLinePrefetcher>(); };
    if (name == "bop")
        return [] { return std::make_unique<BopPrefetcher>(); };
    if (name == "mlop")
        return [] { return std::make_unique<MlopPrefetcher>(); };
    if (name == "ipcp")
        return [] { return std::make_unique<IpcpPrefetcher>(); };
    if (name == "berti")
        return [] { return std::make_unique<BertiPrefetcher>(); };
    if (name == "spp")
        return [] { return std::make_unique<SppPrefetcher>(); };
    if (name == "spp-ppf")
        return [] { return std::make_unique<SppPpfPrefetcher>(); };
    if (name == "bingo")
        return [] { return std::make_unique<BingoPrefetcher>(); };
    if (name == "vldp")
        return [] { return std::make_unique<VldpPrefetcher>(); };
    if (name == "misb")
        return [] { return std::make_unique<MisbPrefetcher>(); };
    if (name == "pythia")
        return [] { return std::make_unique<PythiaPrefetcher>(); };
    if (name == "sms")
        return [] { return std::make_unique<SmsPrefetcher>(); };
    if (name == "stream")
        return [] { return std::make_unique<StreamPrefetcher>(); };
    throw verify::SimError(verify::ErrorKind::Config, "experiment",
                           "unknown prefetcher: \"" + name + "\"");
}

std::uint64_t
bitsOf(const PrefetcherFactory &f)
{
    return f ? f()->storageBits() : 0;
}

} // namespace

PrefetcherSpec
makeSpec(const std::string &combo)
{
    PrefetcherSpec spec;
    spec.name = combo;
    std::string l1_name = combo;
    std::string l2_name;
    auto plus = combo.find('+');
    if (plus != std::string::npos) {
        l1_name = combo.substr(0, plus);
        l2_name = combo.substr(plus + 1);
    }
    spec.l1d = factoryFor(l1_name);
    spec.l2 = factoryFor(l2_name);
    spec.storageBits = bitsOf(spec.l1d) + bitsOf(spec.l2);
    return spec;
}

PrefetcherSpec
makeBertiSpec(const BertiConfig &cfg, const std::string &label)
{
    PrefetcherSpec spec;
    spec.name = label;
    spec.l1d = [cfg] { return std::make_unique<BertiPrefetcher>(cfg); };
    spec.storageBits = bitsOf(spec.l1d);
    return spec;
}

obs::MetricsSnapshot
resultSnapshot(const SimResult &result)
{
    obs::MetricsSnapshot snap = obs::snapshotOf(result.roi);
    snap.setGauge("ipc", result.ipc);
    obs::appendEnergy(snap, result.energy);
    return snap;
}

SimResult
simulate(const Workload &workload, const PrefetcherSpec &spec,
         const SimParams &params)
{
    auto gen = workload.make();
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.dram.mtps = params.dramMtps;
    cfg.l1dPrefetcher = spec.l1d;
    cfg.l2Prefetcher = spec.l2;
    if (params.forceAudit)
        cfg.audit.enabled = true;
    cfg.faults = params.faults;

    Machine machine(cfg, {gen.get()});
    machine.run(params.warmupInstructions);
    RunStats start = machine.liveStats(0);
    machine.run(params.measureInstructions);
    RunStats end = machine.liveStats(0);

    SimResult r;
    r.roi = end.diff(start);
    r.ipc = r.roi.core.ipc();
    r.energy = EnergyModel{}.evaluate(r.roi);
    return r;
}

std::vector<SimResult>
simulateMix(const std::vector<Workload> &mix, const PrefetcherSpec &spec,
            const SimParams &params)
{
    MachineConfig cfg =
        MachineConfig::sunnyCove(static_cast<unsigned>(mix.size()));
    cfg.dram.mtps = params.dramMtps;
    cfg.l1dPrefetcher = spec.l1d;
    cfg.l2Prefetcher = spec.l2;
    if (params.forceAudit)
        cfg.audit.enabled = true;
    cfg.faults = params.faults;

    std::vector<std::unique_ptr<TraceGenerator>> gens;
    std::vector<TraceGenerator *> gen_ptrs;
    for (const auto &w : mix) {
        gens.push_back(w.make());
        gen_ptrs.push_back(gens.back().get());
    }

    Machine machine(cfg, gen_ptrs);
    machine.run(params.warmupInstructions);
    std::vector<RunStats> start;
    for (unsigned c = 0; c < mix.size(); ++c)
        start.push_back(machine.coreSnapshot(c));
    machine.run(params.measureInstructions);

    std::vector<SimResult> out;
    for (unsigned c = 0; c < mix.size(); ++c) {
        SimResult r;
        r.roi = machine.coreSnapshot(c).diff(start[c]);
        r.ipc = r.roi.core.ipc();
        r.energy = EnergyModel{}.evaluate(r.roi);
        out.push_back(r);
    }
    return out;
}

std::vector<SimResult>
runSuite(const std::vector<Workload> &workloads,
         const PrefetcherSpec &spec, const SimParams &params)
{
    std::vector<SimResult> out;
    out.reserve(workloads.size());
    for (const auto &w : workloads)
        out.push_back(simulate(w, spec, params));
    return out;
}

double
speedupGeomean(const std::vector<SimResult> &test,
               const std::vector<SimResult> &baseline)
{
    if (test.size() != baseline.size()) {
        throw verify::SimError(
            verify::ErrorKind::Config, "experiment",
            "speedupGeomean size mismatch: " + std::to_string(test.size()) +
                " test vs " + std::to_string(baseline.size()) +
                " baseline results; a truncated geomean would silently "
                "drop workloads");
    }
    std::vector<double> speedups;
    for (std::size_t i = 0; i < test.size(); ++i) {
        if (baseline[i].ipc > 0.0)
            speedups.push_back(test[i].ipc / baseline[i].ipc);
    }
    return geomean(speedups.data(), speedups.size());
}

} // namespace berti
