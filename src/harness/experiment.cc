#include "harness/experiment.hh"

#include "prefetch/registry.hh"
#include "verify/sim_error.hh"


namespace berti
{

namespace
{

PrefetcherFactory
factoryFor(const std::string &name)
{
    return prefetch::make(name);
}

std::uint64_t
bitsOf(const PrefetcherFactory &f)
{
    return f ? f()->storageBits() : 0;
}

} // namespace

PrefetcherSpec
makeSpec(const std::string &combo)
{
    PrefetcherSpec spec;
    spec.name = combo;
    std::string l1_name = combo;
    std::string l2_name;
    auto plus = combo.find('+');
    if (plus != std::string::npos) {
        l1_name = combo.substr(0, plus);
        l2_name = combo.substr(plus + 1);
    }
    spec.l1d = factoryFor(l1_name);
    spec.l2 = factoryFor(l2_name);
    spec.storageBits = bitsOf(spec.l1d) + bitsOf(spec.l2);
    return spec;
}

PrefetcherSpec
makeBertiSpec(const BertiConfig &cfg, const std::string &label)
{
    PrefetcherSpec spec;
    spec.name = label;
    spec.l1d = [cfg] { return std::make_unique<BertiPrefetcher>(cfg); };
    spec.storageBits = bitsOf(spec.l1d);
    return spec;
}

obs::MetricsSnapshot
resultSnapshot(const SimResult &result)
{
    obs::MetricsSnapshot snap = obs::snapshotOf(result.roi);
    snap.setGauge("ipc", result.ipc);
    obs::appendEnergy(snap, result.energy);
    return snap;
}

SimResult
resultFromSnapshot(const obs::MetricsSnapshot &snap)
{
    SimResult r;
    visitRunStatsCounters(r.roi,
                          [&snap](const std::string &name,
                                  std::uint64_t &value) {
                              value = snap.counter(name);
                          });
    r.ipc = r.roi.core.ipc();
    r.energy = EnergyModel{}.evaluate(r.roi);
    return r;
}

SimResult
simulate(const Workload &workload, const PrefetcherSpec &spec,
         const SimParams &params)
{
    auto gen = workload.make();
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.dram.mtps = params.dramMtps;
    cfg.l1dPrefetcher = spec.l1d;
    cfg.l2Prefetcher = spec.l2;
    if (params.forceAudit)
        cfg.audit.enabled = true;
    cfg.faults = params.faults;
    cfg.wallClockBudgetMs = params.wallClockBudgetMs;

    Machine machine(cfg, {gen.get()});
    machine.run(params.warmupInstructions);
    RunStats start = machine.liveStats(0);
    machine.run(params.measureInstructions);
    RunStats end = machine.liveStats(0);

    SimResult r;
    r.roi = end.diff(start);
    r.ipc = r.roi.core.ipc();
    r.energy = EnergyModel{}.evaluate(r.roi);
    return r;
}

std::vector<SimResult>
simulateMix(const std::vector<Workload> &mix, const PrefetcherSpec &spec,
            const SimParams &params)
{
    MachineConfig cfg =
        MachineConfig::sunnyCove(static_cast<unsigned>(mix.size()));
    cfg.dram.mtps = params.dramMtps;
    cfg.l1dPrefetcher = spec.l1d;
    cfg.l2Prefetcher = spec.l2;
    if (params.forceAudit)
        cfg.audit.enabled = true;
    cfg.faults = params.faults;
    cfg.wallClockBudgetMs = params.wallClockBudgetMs;

    std::vector<std::unique_ptr<TraceGenerator>> gens;
    std::vector<TraceGenerator *> gen_ptrs;
    for (const auto &w : mix) {
        gens.push_back(w.make());
        gen_ptrs.push_back(gens.back().get());
    }

    Machine machine(cfg, gen_ptrs);
    machine.run(params.warmupInstructions);
    std::vector<RunStats> start;
    for (unsigned c = 0; c < mix.size(); ++c)
        start.push_back(machine.coreSnapshot(c));
    machine.run(params.measureInstructions);

    std::vector<SimResult> out;
    for (unsigned c = 0; c < mix.size(); ++c) {
        SimResult r;
        r.roi = machine.coreSnapshot(c).diff(start[c]);
        r.ipc = r.roi.core.ipc();
        r.energy = EnergyModel{}.evaluate(r.roi);
        out.push_back(r);
    }
    return out;
}

std::vector<SimResult>
runSuite(const std::vector<Workload> &workloads,
         const PrefetcherSpec &spec, const SimParams &params)
{
    std::vector<SimResult> out;
    out.reserve(workloads.size());
    for (const auto &w : workloads)
        out.push_back(simulate(w, spec, params));
    return out;
}

double
speedupGeomean(const std::vector<SimResult> &test,
               const std::vector<SimResult> &baseline)
{
    if (test.size() != baseline.size()) {
        throw verify::SimError(
            verify::ErrorKind::Config, "experiment",
            "speedupGeomean size mismatch: " + std::to_string(test.size()) +
                " test vs " + std::to_string(baseline.size()) +
                " baseline results; a truncated geomean would silently "
                "drop workloads");
    }
    std::vector<double> speedups;
    for (std::size_t i = 0; i < test.size(); ++i) {
        if (baseline[i].ipc > 0.0)
            speedups.push_back(test[i].ipc / baseline[i].ipc);
    }
    return geomean(speedups.data(), speedups.size());
}

} // namespace berti
