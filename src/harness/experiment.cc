#include "harness/experiment.hh"

#include <cmath>

#include "mem/backend_registry.hh"
#include "prefetch/compose.hh"
#include "prefetch/registry.hh"
#include "sim/options.hh"
#include "sim/spec_parse.hh"
#include "verify/sim_error.hh"


namespace berti
{

namespace
{

std::uint64_t
bitsOf(const PrefetcherFactory &f)
{
    return f ? f()->storageBits() : 0;
}

/**
 * The level separator of a combo like "mlop+bingo" is the '+' at paren
 * depth 0 (the shared paren-aware splitter, so a '+' inside a
 * hybrid(...) child list belongs to the spec — none today, but the
 * split must not bite into one if the grammar grows it).
 */
std::size_t
topLevelPlus(const std::string &combo)
{
    return sim::findTopLevel(combo, '+');
}

PrefetcherSpec
makeSpecImpl(const std::string &combo, const sim::SimOptions *opt)
{
    PrefetcherSpec spec;
    std::string l1_name = combo;
    std::string l2_name;
    auto plus = topLevelPlus(combo);
    if (plus != std::string::npos) {
        l1_name = combo.substr(0, plus);
        l2_name = combo.substr(plus + 1);
    }
    auto resolve = [opt](const std::string &n) {
        return opt ? prefetch::make(n, *opt) : prefetch::make(n);
    };
    auto canon = [opt](const std::string &n) {
        if (!prefetch::isHybridSpec(n))
            return n;
        return prefetch::canonicalHybridSpec(
            n, opt ? prefetch::HybridConfig::fromOptions(*opt)
                   : prefetch::HybridConfig{});
    };
    spec.l1d = resolve(l1_name);
    spec.l2 = resolve(l2_name);
    spec.name = canon(l1_name) +
                (l2_name.empty() ? "" : "+" + canon(l2_name));
    spec.storageBits = bitsOf(spec.l1d) + bitsOf(spec.l2);
    return spec;
}

/** The Table II machine configured for one simulation call. */
MachineConfig
machineConfigFor(const PrefetcherSpec &spec, const SimParams &params,
                 unsigned cores)
{
    MachineConfig cfg = MachineConfig::sunnyCove(cores);
    // Resolve the memory backend ("" = dram:ddr4, the historical
    // machine), then layer the legacy DRAM-speed knob on top only when
    // it was actually moved off its default — Figures 16-17 sweep
    // dramMtps on the default backend exactly as before, while e.g.
    // "dram:hbm" keeps its preset rate under default params.
    mem::ParsedBackend backend = mem::parseBackendSpec(params.memBackend);
    cfg.dram = backend.channel;
    cfg.memBackend = backend.sel;
    if (params.dramMtps != kDefaultDramMtps)
        cfg.dram.mtps = params.dramMtps;
    cfg.l1dPrefetcher = spec.l1d;
    cfg.l2Prefetcher = spec.l2;
    if (params.forceAudit)
        cfg.audit.enabled = true;
    cfg.faults = params.faults;
    cfg.wallClockBudgetMs = params.wallClockBudgetMs;
    return cfg;
}

/** Derive ipc + energy from an already-filled ROI. */
SimResult
finishResult(RunStats roi)
{
    SimResult r;
    r.roi = roi;
    r.ipc = r.roi.core.ipc();
    r.energy = EnergyModel{}.evaluate(r.roi);
    return r;
}

/** A degenerate geometry measures nothing or overlaps its own windows;
 *  fail typed and loud instead of producing a silently-wrong sample. */
void
validateGeometry(const SampleGeometry &g)
{
    if (!g.enabled()) {
        throw verify::SimError(
            verify::ErrorKind::Config, "experiment",
            "sampled simulation requested with windowCount == 0");
    }
    if (g.windowMeasure == 0) {
        throw verify::SimError(
            verify::ErrorKind::Config, "experiment",
            "sampling windowMeasure must be positive — a window that "
            "measures 0 instructions contributes nothing");
    }
    if (g.stride() < g.windowWarmup + g.windowMeasure) {
        throw verify::SimError(
            verify::ErrorKind::Config, "experiment",
            "sampling stride " + std::to_string(g.stride()) +
                " is shorter than one window (warmup " +
                std::to_string(g.windowWarmup) + " + measure " +
                std::to_string(g.windowMeasure) +
                ") — windows would overlap");
    }
}

std::string
windowCheckpointPath(const std::string &dir, unsigned window)
{
    return dir + "/window-" + std::to_string(window) + ".ckpt";
}

/** Mean / sample stddev / 95% half-width over the per-window IPCs. */
void
computeDispersion(SampledResult &s)
{
    const std::size_t n = s.windows.size();
    if (n == 0)
        return;
    double sum = 0.0;
    for (const SimResult &w : s.windows)
        sum += w.ipc;
    s.ipcMean = sum / static_cast<double>(n);
    if (n > 1) {
        double sq = 0.0;
        for (const SimResult &w : s.windows) {
            double d = w.ipc - s.ipcMean;
            sq += d * d;
        }
        s.ipcStddev = std::sqrt(sq / static_cast<double>(n - 1));
        s.ipcCiHalfWidth =
            1.96 * s.ipcStddev / std::sqrt(static_cast<double>(n));
    }
}

} // namespace

PrefetcherSpec
makeSpec(const std::string &combo)
{
    return makeSpecImpl(combo, nullptr);
}

PrefetcherSpec
makeSpec(const std::string &combo, const sim::SimOptions &opt)
{
    return makeSpecImpl(combo, &opt);
}

PrefetcherSpec
makeBertiSpec(const BertiConfig &cfg, const std::string &label)
{
    PrefetcherSpec spec;
    spec.name = label;
    spec.l1d = [cfg] { return std::make_unique<BertiPrefetcher>(cfg); };
    spec.storageBits = bitsOf(spec.l1d);
    return spec;
}

obs::MetricsSnapshot
resultSnapshot(const SimResult &result)
{
    obs::MetricsSnapshot snap = obs::snapshotOf(result.roi);
    snap.setGauge("ipc", result.ipc);
    obs::appendEnergy(snap, result.energy);
    return snap;
}

SimResult
resultFromSnapshot(const obs::MetricsSnapshot &snap)
{
    SimResult r;
    visitRunStatsCounters(r.roi,
                          [&snap](const std::string &name,
                                  std::uint64_t &value) {
                              value = snap.counter(name);
                          });
    r.ipc = r.roi.core.ipc();
    r.energy = EnergyModel{}.evaluate(r.roi);
    return r;
}

SimResult
simulate(const Workload &workload, const PrefetcherSpec &spec,
         const SimParams &params)
{
    if (params.sampling.enabled())
        return simulateSampled(workload, spec, params).aggregate;

    auto gen = workload.make();
    MachineConfig cfg = machineConfigFor(spec, params, 1);

    Machine machine(cfg, {gen.get()});
    machine.run(params.warmupInstructions);
    RunStats start = machine.liveStats(0);
    machine.run(params.measureInstructions);
    RunStats end = machine.liveStats(0);
    return finishResult(end.diff(start));
}

SampledResult
simulateSampled(const Workload &workload, const PrefetcherSpec &spec,
                const SimParams &params)
{
    const SampleGeometry &g = params.sampling;
    validateGeometry(g);

    auto gen = workload.make();
    MachineConfig cfg = machineConfigFor(spec, params, 1);
    Machine machine(cfg, {gen.get()});

    if (!g.checkpointDir.empty()) {
        std::string why;
        if (!machine.checkpointSupported(&why)) {
            throw verify::SimError(
                verify::ErrorKind::Checkpoint, "experiment",
                "sampling checkpointDir is set but this machine cannot "
                "checkpoint: " + why);
        }
    }

    machine.run(params.warmupInstructions);

    SampledResult out;
    out.windows.reserve(g.windowCount);
    out.windowStartInstruction.reserve(g.windowCount);
    const std::uint64_t window_span = g.windowWarmup + g.windowMeasure;
    for (unsigned k = 0; k < g.windowCount; ++k) {
        // Window boundary: persist the warm microarchitectural state so
        // this window can be re-simulated in isolation later.
        if (!g.checkpointDir.empty())
            machine.saveCheckpoint(windowCheckpointPath(g.checkpointDir, k));

        if (g.windowWarmup > 0)
            machine.run(g.windowWarmup);
        RunStats start = machine.liveStats(0);
        out.windowStartInstruction.push_back(start.core.instructions);
        machine.run(g.windowMeasure);
        RunStats end = machine.liveStats(0);
        out.windows.push_back(finishResult(end.diff(start)));

        // Simulated-but-unmeasured gap to the next window start.
        std::uint64_t gap = g.stride() - window_span;
        if (k + 1 < g.windowCount && gap > 0)
            machine.run(gap);
    }

    for (const SimResult &w : out.windows)
        out.aggregate.roi.add(w.roi);
    out.aggregate = finishResult(out.aggregate.roi);
    out.instructionsSimulated = machine.liveStats(0).core.instructions;
    computeDispersion(out);
    return out;
}

std::vector<SampledResult>
simulateMixSampled(const std::vector<Workload> &mix,
                   const PrefetcherSpec &spec, const SimParams &params)
{
    const SampleGeometry &g = params.sampling;
    validateGeometry(g);
    if (!g.checkpointDir.empty()) {
        throw verify::SimError(
            verify::ErrorKind::Config, "experiment",
            "per-window checkpoints are single-core only: "
            "resumeSampledWindow cannot rebuild a mix machine");
    }

    MachineConfig cfg = machineConfigFor(
        spec, params, static_cast<unsigned>(mix.size()));

    std::vector<std::unique_ptr<TraceGenerator>> gens;
    std::vector<TraceGenerator *> gen_ptrs;
    for (const auto &w : mix) {
        gens.push_back(w.make());
        gen_ptrs.push_back(gens.back().get());
    }

    Machine machine(cfg, gen_ptrs);
    machine.run(params.warmupInstructions);

    std::vector<SampledResult> out(mix.size());
    const std::uint64_t window_span = g.windowWarmup + g.windowMeasure;
    for (unsigned k = 0; k < g.windowCount; ++k) {
        if (g.windowWarmup > 0)
            machine.run(g.windowWarmup);
        std::vector<RunStats> start;
        for (unsigned c = 0; c < mix.size(); ++c)
            start.push_back(machine.coreSnapshot(c));
        machine.run(g.windowMeasure);
        for (unsigned c = 0; c < mix.size(); ++c) {
            RunStats roi = machine.coreSnapshot(c).diff(start[c]);
            out[c].windowStartInstruction.push_back(
                start[c].core.instructions);
            out[c].windows.push_back(finishResult(roi));
        }
        std::uint64_t gap = g.stride() - window_span;
        if (k + 1 < g.windowCount && gap > 0)
            machine.run(gap);
    }

    for (unsigned c = 0; c < mix.size(); ++c) {
        for (const SimResult &w : out[c].windows)
            out[c].aggregate.roi.add(w.roi);
        out[c].aggregate = finishResult(out[c].aggregate.roi);
        out[c].instructionsSimulated =
            machine.liveStats(c).core.instructions;
        computeDispersion(out[c]);
    }
    return out;
}

SimResult
resumeSampledWindow(const Workload &workload, const PrefetcherSpec &spec,
                    const SimParams &params,
                    const std::string &checkpointPath)
{
    validateGeometry(params.sampling);

    auto gen = workload.make();
    MachineConfig cfg = machineConfigFor(spec, params, 1);
    Machine machine(cfg, {gen.get()});
    machine.resumeFrom(checkpointPath);

    if (params.sampling.windowWarmup > 0)
        machine.run(params.sampling.windowWarmup);
    RunStats start = machine.liveStats(0);
    machine.run(params.sampling.windowMeasure);
    RunStats end = machine.liveStats(0);
    return finishResult(end.diff(start));
}

SampledError
sampledVsFull(const SampledResult &sampled, const SimResult &full)
{
    SampledError e;
    if (full.ipc > 0.0)
        e.ipcRel = std::abs(sampled.aggregate.ipc - full.ipc) / full.ipc;
    double full_mpki =
        full.roi.l1d.mpki(full.roi.core.instructions);
    double sampled_mpki = sampled.aggregate.roi.l1d.mpki(
        sampled.aggregate.roi.core.instructions);
    e.l1dMpkiAbs = std::abs(sampled_mpki - full_mpki);
    e.accuracyAbs = std::abs(sampled.aggregate.roi.l1d.accuracy() -
                             full.roi.l1d.accuracy());
    return e;
}

std::vector<SimResult>
simulateMix(const std::vector<Workload> &mix, const PrefetcherSpec &spec,
            const SimParams &params)
{
    if (params.sampling.enabled()) {
        std::vector<SampledResult> sampled =
            simulateMixSampled(mix, spec, params);
        std::vector<SimResult> out;
        out.reserve(sampled.size());
        for (SampledResult &s : sampled)
            out.push_back(std::move(s.aggregate));
        return out;
    }

    MachineConfig cfg = machineConfigFor(
        spec, params, static_cast<unsigned>(mix.size()));

    std::vector<std::unique_ptr<TraceGenerator>> gens;
    std::vector<TraceGenerator *> gen_ptrs;
    for (const auto &w : mix) {
        gens.push_back(w.make());
        gen_ptrs.push_back(gens.back().get());
    }

    Machine machine(cfg, gen_ptrs);
    machine.run(params.warmupInstructions);
    std::vector<RunStats> start;
    for (unsigned c = 0; c < mix.size(); ++c)
        start.push_back(machine.coreSnapshot(c));
    machine.run(params.measureInstructions);

    std::vector<SimResult> out;
    for (unsigned c = 0; c < mix.size(); ++c)
        out.push_back(finishResult(machine.coreSnapshot(c).diff(start[c])));
    return out;
}

std::vector<SimResult>
runSuite(const std::vector<Workload> &workloads,
         const PrefetcherSpec &spec, const SimParams &params)
{
    std::vector<SimResult> out;
    out.reserve(workloads.size());
    for (const auto &w : workloads)
        out.push_back(simulate(w, spec, params));
    return out;
}

double
speedupGeomean(const std::vector<SimResult> &test,
               const std::vector<SimResult> &baseline)
{
    if (test.size() != baseline.size()) {
        throw verify::SimError(
            verify::ErrorKind::Config, "experiment",
            "speedupGeomean size mismatch: " + std::to_string(test.size()) +
                " test vs " + std::to_string(baseline.size()) +
                " baseline results; a truncated geomean would silently "
                "drop workloads");
    }
    std::vector<double> speedups;
    for (std::size_t i = 0; i < test.size(); ++i) {
        if (baseline[i].ipc <= 0.0) {
            // A non-positive baseline IPC means that workload never
            // simulated (or retired nothing); skipping it would quietly
            // drop it from the geomean, biasing the figure.
            throw verify::SimError(
                verify::ErrorKind::Config, "experiment",
                "speedupGeomean: baseline result " + std::to_string(i) +
                    " has non-positive IPC (" +
                    std::to_string(baseline[i].ipc) +
                    ") — that workload would be silently dropped from "
                    "the geomean");
        }
        speedups.push_back(test[i].ipc / baseline[i].ipc);
    }
    return geomean(speedups.data(), speedups.size());
}

} // namespace berti
