/**
 * @file
 * Machine checkpoint/resume: versioned, checksummed, deterministic
 * serialization of the complete simulator state. Implemented as Machine
 * member functions (declared in harness/machine.hh) so the walk over
 * the private topology needs no friend shims.
 */

#include "harness/checkpoint.hh"

#include <string_view>

#include "harness/machine.hh"
#include "obs/export.hh"
#include "sim/serialize.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

[[noreturn]] void
rejectCheckpoint(const std::string &reason, const std::string &path = {})
{
    throw verify::SimError(verify::ErrorKind::Checkpoint, "Machine",
                           reason, path);
}

/** Fold one cache's architectural shape into the fingerprint. */
void
foldCacheConfig(sim::Fnv64 &h, const CacheConfig &c,
                const Prefetcher *pf)
{
    h.add(c.name);
    h.add(static_cast<std::uint64_t>(c.level));
    h.add(static_cast<std::uint64_t>(c.sets));
    h.add(static_cast<std::uint64_t>(c.ways));
    h.add(static_cast<std::uint64_t>(c.latency));
    h.add(static_cast<std::uint64_t>(c.mshrs));
    h.add(static_cast<std::uint64_t>(c.rqSize));
    h.add(static_cast<std::uint64_t>(c.pqSize));
    h.add(static_cast<std::uint64_t>(c.wqSize));
    h.add(static_cast<std::uint64_t>(c.repl));
    h.add(static_cast<std::uint64_t>(c.isL1d));
    h.add(static_cast<std::uint64_t>(c.trainOnInstrFetch));
    h.add(pf ? pf->name() : std::string("none"));
}

} // namespace

bool
Machine::checkpointSupported(std::string *why) const
{
    auto blocked = [why](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (cfg.faults) {
        return blocked(
            "fault injection is active — the injector's RNG is owned by "
            "the caller and cannot be restored from a checkpoint");
    }
    for (unsigned c = 0; c < cfg.cores; ++c) {
        const CoreNode &n = *nodes[c];
        for (const Cache *cache :
             {n.l1iCache.get(), n.l1dCache.get(), n.l2Cache.get()}) {
            const Prefetcher *pf = cache->prefetcher();
            if (pf && !pf->checkpointSupported()) {
                return blocked("prefetcher '" + pf->name() + "' at " +
                               cache->config().name + " of core " +
                               std::to_string(c) +
                               " does not support checkpointing");
            }
        }
    }
    if (const Prefetcher *pf = llc->prefetcher()) {
        if (!pf->checkpointSupported()) {
            return blocked("prefetcher '" + pf->name() +
                           "' at the LLC does not support checkpointing");
        }
    }
    if (!dram->checkpointSupported()) {
        return blocked("memory backend '" + dram->name() +
                       "' does not support checkpointing");
    }
    return true;
}

std::uint64_t
Machine::configFingerprint() const
{
    sim::Fnv64 h;
    h.add(static_cast<std::uint64_t>(cfg.cores));

    h.add(static_cast<std::uint64_t>(cfg.core.robSize));
    h.add(static_cast<std::uint64_t>(cfg.core.fetchWidth));
    h.add(static_cast<std::uint64_t>(cfg.core.dispatchWidth));
    h.add(static_cast<std::uint64_t>(cfg.core.retireWidth));
    h.add(static_cast<std::uint64_t>(cfg.core.fetchBufferSize));
    h.add(static_cast<std::uint64_t>(cfg.core.mispredictPenalty));

    // Per-node caches share one config; the LLC is scaled per core at
    // build time, so fingerprint the *built* LLC, not cfg.llc.
    const CoreNode &n0 = *nodes[0];
    foldCacheConfig(h, n0.l1iCache->config(), n0.l1iCache->prefetcher());
    foldCacheConfig(h, n0.l1dCache->config(), n0.l1dCache->prefetcher());
    foldCacheConfig(h, n0.l2Cache->config(), n0.l2Cache->prefetcher());
    foldCacheConfig(h, llc->config(), llc->prefetcher());

    h.add(static_cast<std::uint64_t>(cfg.dram.banks));
    h.add(static_cast<std::uint64_t>(cfg.dram.rqSize));
    h.add(static_cast<std::uint64_t>(cfg.dram.wqSize));
    h.add(static_cast<std::uint64_t>(cfg.dram.rowBytes));
    h.add(static_cast<std::uint64_t>(cfg.dram.mtps));
    h.add(static_cast<std::uint64_t>(cfg.dram.linkLatency));
    h.add(static_cast<std::uint64_t>(cfg.dram.busBytes));
    h.add(static_cast<std::uint64_t>(cfg.dram.sched == DramSchedKind::Fcfs
                                         ? 1
                                         : 0));
    h.add(static_cast<std::uint64_t>(cfg.dram.starvationCap));
    h.add(std::string_view(cfg.memBackend.model));
    h.add(static_cast<std::uint64_t>(cfg.memBackend.channels));

    h.add(static_cast<std::uint64_t>(cfg.tlb.dtlbSets));
    h.add(static_cast<std::uint64_t>(cfg.tlb.dtlbWays));
    h.add(static_cast<std::uint64_t>(cfg.tlb.stlbSets));
    h.add(static_cast<std::uint64_t>(cfg.tlb.stlbWays));
    h.add(cfg.tlb.pageSeed);

    return h.value();
}

sim::PtrMap
Machine::clientMap() const
{
    // Both sides of a checkpoint walk the topology in this exact order,
    // so the dense ids agree. Cache is multiply derived — always map
    // the ReadClient subobject, matching what MemRequest::client holds.
    sim::PtrMap clients;
    for (const auto &n : nodes) {
        clients.add(static_cast<ReadClient *>(n->cpu.get()));
        clients.add(static_cast<ReadClient *>(n->l1iCache.get()));
        clients.add(static_cast<ReadClient *>(n->l1dCache.get()));
        clients.add(static_cast<ReadClient *>(n->l2Cache.get()));
    }
    clients.add(static_cast<ReadClient *>(llc.get()));
    return clients;
}

void
Machine::savePayload(sim::ByteWriter &w, const sim::PtrMap &clients) const
{
    w.u64(clock);
    // cyclesSkipped is deliberately NOT serialized: it counts which
    // idle cycles the quiescence skip happened to fast-forward — a
    // wall-time diagnostic whose value depends on unserialized probe
    // backoff (and audit-deadline) state, not on simulated behaviour.
    // Including it would make byte-equal blobs depend on skip timing.
    for (unsigned c = 0; c < cfg.cores; ++c) {
        const CoreNode &n = *nodes[c];
        n.cpu->saveState(w, clients);
        n.l1iCache->saveState(w, clients);
        n.l1dCache->saveState(w, clients);
        n.l2Cache->saveState(w, clients);
        n.tu->saveState(w);
    }
    llc->saveState(w, clients);
    dram->saveState(w, clients);

    // Per-core run() snapshots, so coreSnapshot() survives a resume.
    w.tag(0x5A475000u);
    for (const RunStats &s : snapshots) {
        sim::saveStatsFields(w, s.core);
        sim::saveStatsFields(w, s.l1i);
        sim::saveStatsFields(w, s.l1d);
        sim::saveStatsFields(w, s.l2);
        sim::saveStatsFields(w, s.llc);
        sim::saveStatsFields(w, s.dtlb);
        sim::saveStatsFields(w, s.stlb);
        sim::saveStatsFields(w, s.dram);
    }
}

void
Machine::loadPayload(sim::ByteReader &r, const sim::PtrMap &clients)
{
    clock = r.u64();
    cyclesSkipped = 0;  // diagnostic; restarts with the new process
    for (unsigned c = 0; c < cfg.cores; ++c) {
        CoreNode &n = *nodes[c];
        n.cpu->loadState(r, clients);
        n.l1iCache->loadState(r, clients);
        n.l1dCache->loadState(r, clients);
        n.l2Cache->loadState(r, clients);
        n.tu->loadState(r);
    }
    llc->loadState(r, clients);
    dram->loadState(r, clients);

    r.expectTag(0x5A475000u, "snapshots");
    for (RunStats &s : snapshots) {
        sim::loadStatsFields(r, s.core);
        sim::loadStatsFields(r, s.l1i);
        sim::loadStatsFields(r, s.l1d);
        sim::loadStatsFields(r, s.l2);
        sim::loadStatsFields(r, s.llc);
        sim::loadStatsFields(r, s.dtlb);
        sim::loadStatsFields(r, s.stlb);
        sim::loadStatsFields(r, s.dram);
    }
}

std::string
Machine::saveCheckpointBlob() const
{
    std::string why;
    if (!checkpointSupported(&why))
        rejectCheckpoint(why);

    sim::ByteWriter w;
    w.u64(harness::kCheckpointMagic);
    w.u32(harness::kCheckpointVersion);
    w.u64(configFingerprint());
    w.u32(cfg.cores);
    savePayload(w, clientMap());

    std::string blob = w.take();
    sim::ByteWriter tail;
    tail.u64(sim::fnv1a64(blob));
    blob += tail.data();
    return blob;
}

void
Machine::saveCheckpoint(const std::string &path) const
{
    // Atomic: obs::writeFile stages into path + ".tmp" and renames.
    obs::writeFile(path, saveCheckpointBlob());
}

void
Machine::resumeFromBlob(const std::string &blob)
{
    std::string why;
    if (!checkpointSupported(&why))
        rejectCheckpoint(why);
    if (clock != 0)
        rejectCheckpoint("resume target must be pristine — this machine "
                         "has already run to cycle " +
                         std::to_string(clock));
    for (unsigned c = 0; c < cfg.cores; ++c) {
        if (nodes[c]->cpu->fetchedInstructions() != 0) {
            rejectCheckpoint(
                "resume target must be pristine — core " +
                std::to_string(c) + " has already fetched instructions");
        }
    }

    // Whole-blob validation happens before a single payload field is
    // applied: size, checksum, magic, version, fingerprint, core count.
    constexpr std::size_t min_size = harness::kCheckpointHeaderBytes +
                                     harness::kCheckpointChecksumBytes;
    if (blob.size() < min_size) {
        rejectCheckpoint("checkpoint is " + std::to_string(blob.size()) +
                         " bytes — smaller than the fixed header");
    }
    std::string_view body(blob.data(),
                          blob.size() - harness::kCheckpointChecksumBytes);
    sim::ByteReader sum_r(
        std::string_view(blob.data() + body.size(),
                         harness::kCheckpointChecksumBytes),
        "Machine");
    std::uint64_t stored_sum = sum_r.u64();
    std::uint64_t computed_sum = sim::fnv1a64(body);
    if (stored_sum != computed_sum)
        rejectCheckpoint("checksum mismatch — the checkpoint is corrupt "
                         "(torn write or bit flip)");

    sim::ByteReader r(body, "Machine");
    std::uint64_t magic = r.u64();
    if (magic != harness::kCheckpointMagic)
        rejectCheckpoint("bad magic — not a Berti checkpoint");
    std::uint32_t version = r.u32();
    if (version != harness::kCheckpointVersion) {
        rejectCheckpoint(
            "format version " + std::to_string(version) +
            " is not the supported version " +
            std::to_string(harness::kCheckpointVersion) +
            " — checkpoints do not migrate across versions; re-run "
            "the interrupted experiment from scratch");
    }
    std::uint64_t fingerprint = r.u64();
    if (fingerprint != configFingerprint()) {
        rejectCheckpoint(
            "configuration fingerprint mismatch — the checkpoint was "
            "written by a machine with a different topology "
            "(cores/caches/DRAM/TLB/prefetchers)");
    }
    std::uint32_t cores = r.u32();
    if (cores != cfg.cores) {
        rejectCheckpoint("checkpoint has " + std::to_string(cores) +
                         " cores, this machine has " +
                         std::to_string(cfg.cores));
    }

    sim::PtrMap clients = clientMap();
    loadPayload(r, clients);
    if (!r.atEnd()) {
        rejectCheckpoint(std::to_string(r.remaining()) +
                         " trailing payload bytes after a complete "
                         "restore — checkpoint layout mismatch");
    }

    // Re-synchronise the (deterministic) trace generators by replaying
    // exactly the instructions the saved cores had already fetched.
    for (unsigned c = 0; c < cfg.cores; ++c) {
        std::uint64_t fetched = nodes[c]->cpu->fetchedInstructions();
        for (std::uint64_t i = 0; i < fetched; ++i)
            gens[c]->next();
    }

    // Full invariant sweep over the restored state when auditing is on.
    if (audit)
        audit->checkNow();
}

void
Machine::resumeFrom(const std::string &path)
{
    std::string blob;
    try {
        blob = obs::readFile(path);
    } catch (const verify::SimError &e) {
        rejectCheckpoint("cannot read checkpoint: " + e.reason(), path);
    }
    resumeFromBlob(blob);
}

} // namespace berti
