#include "harness/machine.hh"

#include <cassert>

namespace berti
{

MachineConfig
MachineConfig::sunnyCove(unsigned cores)
{
    MachineConfig m;
    m.cores = cores;

    m.l1i.name = "L1I";
    m.l1i.level = 1;
    m.l1i.sets = 64;       // 32 KB, 8-way
    m.l1i.ways = 8;
    m.l1i.latency = 4;
    m.l1i.mshrs = 8;
    m.l1i.rqSize = 16;
    m.l1i.repl = ReplKind::Lru;
    m.l1i.trainOnInstrFetch = true;

    m.l1d.name = "L1D";
    m.l1d.level = 1;
    m.l1d.sets = 64;       // 48 KB, 12-way
    m.l1d.ways = 12;
    m.l1d.latency = 5;
    m.l1d.mshrs = 16;
    m.l1d.rqSize = 32;
    m.l1d.pqSize = 16;
    m.l1d.repl = ReplKind::Lru;
    m.l1d.isL1d = true;

    m.l2.name = "L2";
    m.l2.level = 2;
    m.l2.sets = 1024;      // 512 KB, 8-way
    m.l2.ways = 8;
    m.l2.latency = 10;
    m.l2.mshrs = 32;
    m.l2.rqSize = 48;
    m.l2.pqSize = 32;
    m.l2.repl = ReplKind::Srrip;

    m.llc.name = "LLC";
    m.llc.level = 3;
    m.llc.sets = 2048;     // 2 MB/core, 16-way; scaled at build
    m.llc.ways = 16;
    m.llc.latency = 20;
    m.llc.mshrs = 64;      // per core; scaled at build
    m.llc.rqSize = 64;
    m.llc.repl = ReplKind::Drrip;

    m.dram = DramConfig{};  // DDR5-6400, one channel per 4 cores
    return m;
}

Machine::Machine(const MachineConfig &config,
                 std::vector<TraceGenerator *> generators)
    : cfg(config)
{
    assert(generators.size() == cfg.cores);

    dram = std::make_unique<Dram>(cfg.dram, &clock);

    CacheConfig llc_cfg = cfg.llc;
    llc_cfg.sets *= cfg.cores;     // 2 MB and 64 MSHRs per core
    llc_cfg.mshrs *= cfg.cores;
    llc_cfg.rqSize *= cfg.cores;
    llc = std::make_unique<Cache>(llc_cfg, &clock);
    llc->setLower(dram.get());

    for (unsigned c = 0; c < cfg.cores; ++c) {
        auto node = std::make_unique<CoreNode>();

        TranslationUnit::Config tlb_cfg = cfg.tlb;
        tlb_cfg.pageSeed = cfg.tlb.pageSeed + 0x1000ull * c;
        node->tu = std::make_unique<TranslationUnit>(tlb_cfg);

        node->l1iCache = std::make_unique<Cache>(cfg.l1i, &clock);
        node->l1dCache = std::make_unique<Cache>(cfg.l1d, &clock);
        node->l2Cache = std::make_unique<Cache>(cfg.l2, &clock);

        node->l1iCache->setLower(node->l2Cache.get());
        node->l1dCache->setLower(node->l2Cache.get());
        node->l2Cache->setLower(llc.get());
        node->l1dCache->setTranslation(node->tu.get());

        if (cfg.l1dPrefetcher)
            node->l1dCache->setPrefetcher(cfg.l1dPrefetcher());
        if (cfg.l2Prefetcher)
            node->l2Cache->setPrefetcher(cfg.l2Prefetcher());
        if (cfg.l1iPrefetcher)
            node->l1iCache->setPrefetcher(cfg.l1iPrefetcher());

        node->cpu = std::make_unique<Core>(
            cfg.core, &clock, c, generators[c], node->l1iCache.get(),
            node->l1dCache.get(), node->tu.get());

        nodes.push_back(std::move(node));
    }
    snapshots.resize(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c)
        snapshots[c] = liveStats(c);
}

void
Machine::tick()
{
    ++clock;
    dram->tick();
    llc->tick();
    for (auto &n : nodes) {
        n->l2Cache->tick();
        n->l1dCache->tick();
        n->l1iCache->tick();
        n->cpu->tick();
    }
}

void
Machine::run(std::uint64_t target_instructions)
{
    std::vector<std::uint64_t> targets(cfg.cores);
    std::vector<bool> done(cfg.cores, false);
    for (unsigned c = 0; c < cfg.cores; ++c)
        targets[c] = nodes[c]->cpu->stats.instructions +
                     target_instructions;

    unsigned remaining = cfg.cores;
    // Hard safety bound so a configuration bug cannot hang a bench.
    std::uint64_t max_cycles =
        clock + 2000ull * target_instructions + 1000000ull;

    while (remaining > 0 && clock < max_cycles) {
        tick();
        for (unsigned c = 0; c < cfg.cores; ++c) {
            if (!done[c] &&
                nodes[c]->cpu->stats.instructions >= targets[c]) {
                done[c] = true;
                snapshots[c] = liveStats(c);
                --remaining;
            }
        }
    }
}

RunStats
Machine::liveStats(unsigned c) const
{
    RunStats s;
    s.core = nodes[c]->cpu->stats;
    s.core.cycles = clock;  // wall-clock cycles of the machine
    s.l1i = nodes[c]->l1iCache->stats;
    s.l1d = nodes[c]->l1dCache->stats;
    s.l2 = nodes[c]->l2Cache->stats;
    s.llc = llc->stats;
    s.dtlb = nodes[c]->tu->dtlbStats();
    s.stlb = nodes[c]->tu->stlbStats();
    s.dram = dram->stats;
    return s;
}

RunStats
Machine::coreSnapshot(unsigned c) const
{
    return snapshots[c];
}

} // namespace berti
