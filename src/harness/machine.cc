#include "harness/machine.hh"

#include "energy/energy_model.hh"
#include "verify/fault_injector.hh"
#include "verify/sim_error.hh"

namespace berti
{

namespace
{

[[noreturn]] void
rejectConfig(const std::string &reason)
{
    throw verify::SimError(verify::ErrorKind::Config, "Machine", reason);
}

} // namespace

MachineConfig
MachineConfig::sunnyCove(unsigned cores)
{
    MachineConfig m;
    m.cores = cores;

    m.l1i.name = "L1I";
    m.l1i.level = 1;
    m.l1i.sets = 64;       // 32 KB, 8-way
    m.l1i.ways = 8;
    m.l1i.latency = 4;
    m.l1i.mshrs = 8;
    m.l1i.rqSize = 16;
    m.l1i.repl = ReplKind::Lru;
    m.l1i.trainOnInstrFetch = true;

    m.l1d.name = "L1D";
    m.l1d.level = 1;
    m.l1d.sets = 64;       // 48 KB, 12-way
    m.l1d.ways = 12;
    m.l1d.latency = 5;
    m.l1d.mshrs = 16;
    m.l1d.rqSize = 32;
    m.l1d.pqSize = 16;
    m.l1d.repl = ReplKind::Lru;
    m.l1d.isL1d = true;

    m.l2.name = "L2";
    m.l2.level = 2;
    m.l2.sets = 1024;      // 512 KB, 8-way
    m.l2.ways = 8;
    m.l2.latency = 10;
    m.l2.mshrs = 32;
    m.l2.rqSize = 48;
    m.l2.pqSize = 32;
    m.l2.repl = ReplKind::Srrip;

    m.llc.name = "LLC";
    m.llc.level = 3;
    m.llc.sets = 2048;     // 2 MB/core, 16-way; scaled at build
    m.llc.ways = 16;
    m.llc.latency = 20;
    m.llc.mshrs = 64;      // per core; scaled at build
    m.llc.rqSize = 64;
    m.llc.repl = ReplKind::Drrip;

    m.dram = DramConfig{};  // the ddr4 registry preset (one channel)
    return m;
}

void
MachineConfig::applyOptions(const sim::SimOptions &opt)
{
    sampler = obs::SamplerConfig::fromOptions(opt);
    pfTrace = obs::TraceConfig::fromOptions(opt);
    audit = verify::AuditConfig::fromOptions(opt);
    cycleSkip = opt.cycleSkip;
    if (!opt.memBackend.empty()) {
        mem::ParsedBackend backend = mem::parseBackendSpec(opt.memBackend);
        dram = backend.channel;
        memBackend = backend.sel;
    }
}

Machine::Machine(const MachineConfig &config,
                 std::vector<TraceGenerator *> generators)
    : cfg(config), gens(generators),
      bornAt(std::chrono::steady_clock::now()),
      watchdog(cfg.watchdog, &clock)
{
    // Always-on configuration validation (replaces release-invisible
    // asserts): every structural mistake fails loudly, typed, at
    // construction time.
    if (cfg.cores == 0)
        rejectConfig("a machine needs at least one core");
    if (generators.size() != cfg.cores) {
        rejectConfig("generator count " +
                     std::to_string(generators.size()) +
                     " does not match core count " +
                     std::to_string(cfg.cores));
    }
    for (TraceGenerator *g : generators) {
        if (!g)
            rejectConfig("null trace generator");
    }
    // Backend geometry/timing validation (typed, names the bad field).
    cfg.dram.validate();

    if (cfg.audit.enabled)
        audit = std::make_unique<verify::SimAuditor>(cfg.audit, &clock);

    dram = cfg.memBackendHook
               ? cfg.memBackendHook(&clock)
               : mem::makeMemBackend(cfg.memBackend, cfg.dram, &clock);
    if (!dram)
        rejectConfig("memory backend hook returned null");
    if (cfg.faults)
        dram->setFaultInjector(cfg.faults);

    CacheConfig llc_cfg = cfg.llc;
    llc_cfg.sets *= cfg.cores;     // 2 MB and 64 MSHRs per core
    llc_cfg.mshrs *= cfg.cores;
    llc_cfg.rqSize *= cfg.cores;
    llc = std::make_unique<Cache>(llc_cfg, &clock);
    llc->setLower(dram.get());

    if (cfg.pfTrace.capacity > 0)
        ptraces.resize(cfg.cores);

    for (unsigned c = 0; c < cfg.cores; ++c) {
        auto node = std::make_unique<CoreNode>();

        TranslationUnit::Config tlb_cfg = cfg.tlb;
        tlb_cfg.pageSeed = cfg.tlb.pageSeed + 0x1000ull * c;
        node->tu = std::make_unique<TranslationUnit>(tlb_cfg);

        node->l1iCache = std::make_unique<Cache>(cfg.l1i, &clock);
        node->l1dCache = std::make_unique<Cache>(cfg.l1d, &clock);
        node->l2Cache = std::make_unique<Cache>(cfg.l2, &clock);

        node->l1iCache->setLower(node->l2Cache.get());
        node->l1dCache->setLower(node->l2Cache.get());
        node->l2Cache->setLower(llc.get());
        node->l1dCache->setTranslation(node->tu.get());

        if (cfg.l1dPrefetcher)
            node->l1dCache->setPrefetcher(cfg.l1dPrefetcher());
        if (cfg.l2Prefetcher)
            node->l2Cache->setPrefetcher(cfg.l2Prefetcher());
        if (cfg.l1iPrefetcher)
            node->l1iCache->setPrefetcher(cfg.l1iPrefetcher());

        if (cfg.pfTrace.capacity > 0) {
            ptraces[c] =
                std::make_unique<obs::PrefetchEventTrace>(cfg.pfTrace);
            node->l1iCache->setEventTrace(ptraces[c].get());
            node->l1dCache->setEventTrace(ptraces[c].get());
            node->l2Cache->setEventTrace(ptraces[c].get());
        }

        node->cpu = std::make_unique<Core>(
            cfg.core, &clock, c, generators[c], node->l1iCache.get(),
            node->l1dCache.get(), node->tu.get());

        // Wiring validation + hardening hooks for this node.
        node->l1iCache->validateWiring();
        node->l1dCache->validateWiring();
        node->l2Cache->validateWiring();
        if (cfg.faults) {
            node->l1iCache->setFaultInjector(cfg.faults);
            node->l1dCache->setFaultInjector(cfg.faults);
            node->l2Cache->setFaultInjector(cfg.faults);
        }
        if (audit) {
            audit->attach(node->l1iCache.get());
            audit->attach(node->l1dCache.get());
            audit->attach(node->l2Cache.get());
            audit->attach(node->cpu.get());
            audit->attach(node->tu.get());
        }

        nodes.push_back(std::move(node));
    }
    llc->validateWiring();
    if (cfg.faults)
        llc->setFaultInjector(cfg.faults);
    if (audit) {
        audit->attach(llc.get());
        audit->attach(dram.get());
    }
    snapshots.resize(cfg.cores);
    for (unsigned c = 0; c < cfg.cores; ++c)
        snapshots[c] = liveStats(c);
    runTargets.reserve(cfg.cores);
    runDone.reserve(cfg.cores);

    registerAllMetrics();
    if (cfg.sampler.interval > 0) {
        sampler = std::make_unique<obs::IntervalSampler>(&metricsReg,
                                                         cfg.sampler);
    }
}

void
Machine::registerAllMetrics()
{
    metricsReg.counter("machine.cycles", &clock);
    dram->registerMetrics(metricsReg, "dram.");
    llc->registerMetrics(metricsReg, "llc.");
    for (unsigned c = 0; c < cfg.cores; ++c) {
        std::string p = "c" + std::to_string(c) + ".";
        CoreNode &n = *nodes[c];
        n.cpu->registerMetrics(metricsReg, p + "core.");
        n.l1iCache->registerMetrics(metricsReg, p + "l1i.");
        n.l1dCache->registerMetrics(metricsReg, p + "l1d.");
        n.l2Cache->registerMetrics(metricsReg, p + "l2.");
        n.tu->registerMetrics(metricsReg, p + "dtlb.", p + "stlb.");
    }
    // Dynamic-energy gauges over the machine-wide aggregate, matching
    // the paper's energy figures (normalised elsewhere).
    auto energy_gauge = [this](double EnergyBreakdown::*part) {
        return [this, part] {
            return EnergyModel().evaluate(aggregateStats()).*part;
        };
    };
    metricsReg.gauge("energy.l1", energy_gauge(&EnergyBreakdown::l1));
    metricsReg.gauge("energy.l2", energy_gauge(&EnergyBreakdown::l2));
    metricsReg.gauge("energy.llc", energy_gauge(&EnergyBreakdown::llc));
    metricsReg.gauge("energy.dram", energy_gauge(&EnergyBreakdown::dram));
    metricsReg.gauge("energy.total", [this] {
        return EnergyModel().evaluate(aggregateStats()).total();
    });
}

void
Machine::tick()
{
    ++clock;
    dram->tick();
    llc->tick();
    for (auto &n : nodes) {
        n->l2Cache->tick();
        n->l1dCache->tick();
        n->l1iCache->tick();
        n->cpu->tick();
    }
    if (audit)
        audit->tick();
}

Cycle
Machine::nextInterestingCycle() const
{
    Cycle next = dram->nextEventCycle();
    next = std::min(next, llc->nextEventCycle());
    for (const auto &n : nodes) {
        next = std::min(next, n->l2Cache->nextEventCycle());
        next = std::min(next, n->l1dCache->nextEventCycle());
        next = std::min(next, n->l1iCache->nextEventCycle());
        next = std::min(next, n->cpu->nextEventCycle());
    }
    return next;
}

void
Machine::fastForward(Cycle cycles)
{
    // An idle tick's only observable effect is ++clock plus one
    // ++stats.cycles per core (watchdog observations are value-stable
    // and the instruction-triggered sampler cannot fire while nothing
    // retires), so a block of idle ticks collapses to bulk additions.
    clock += cycles;
    for (auto &n : nodes)
        n->cpu->stats.cycles += cycles;
    cyclesSkipped += cycles;
}

void
Machine::run(std::uint64_t target_instructions)
{
    runTargets.assign(cfg.cores, 0);
    runDone.assign(cfg.cores, 0);
    for (unsigned c = 0; c < cfg.cores; ++c)
        runTargets[c] = nodes[c]->cpu->stats.instructions +
                        target_instructions;

    unsigned remaining = cfg.cores;
    // Hard safety bound so a configuration bug cannot hang a bench.
    std::uint64_t max_cycles =
        clock + 2000ull * target_instructions + 1000000ull;

    skipBackoff = 1;
    skipProbeAt = 0;
    watchdog.reset(cfg.cores);
    while (remaining > 0 && clock < max_cycles) {
        tick();
        for (unsigned c = 0; c < cfg.cores; ++c) {
            Core &cpu = *nodes[c]->cpu;
            watchdog.observe(c, cpu.stats.instructions,
                             cpu.robHeadId());
            if (!runDone[c] && cpu.stats.instructions >= runTargets[c]) {
                runDone[c] = 1;
                snapshots[c] = liveStats(c);
                --remaining;
            }
        }
        int wedged = watchdog.stalledCore();
        if (wedged >= 0)
            failWedged(static_cast<unsigned>(wedged));

        // Wall-clock deadline, probed every 16384 iterations so the
        // steady_clock read stays off the hot path. Purely an observer:
        // enabling a budget cannot change simulated behaviour, only cut
        // a run short with a typed, diagnosable error.
        if (cfg.wallClockBudgetMs > 0 && (++deadlineProbe & 0x3FFF) == 0) {
            auto elapsed =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - bornAt)
                    .count();
            if (static_cast<std::uint64_t>(elapsed) >=
                cfg.wallClockBudgetMs) {
                throw verify::SimError(
                    verify::ErrorKind::Timeout, "Machine",
                    "wall-clock budget of " +
                        std::to_string(cfg.wallClockBudgetMs) +
                        " ms exhausted after " + std::to_string(elapsed) +
                        " ms at cycle " + std::to_string(clock),
                    {}, 0, diagnostic());
            }
        }
        if (sampler)
            sampler->maybeSample(nodes[0]->cpu->stats.instructions,
                                 clock);

        // Quiescence cycle-skip: when every component is provably idle
        // until some future cycle, fast-forward to just before the
        // earliest of (component event, auditor interval check,
        // watchdog deadline, hard bound) so the next tick executes at
        // exactly the cycle it would have without skipping — results
        // stay bit-identical (see ARCHITECTURE.md, "Performance").
        if (cfg.cycleSkip && remaining > 0 && clock < max_cycles &&
            clock >= skipProbeAt) {
            Cycle next = nextInterestingCycle();
            if (audit)
                next = std::min(next, audit->nextCheckCycle());
            next = std::min(next, watchdog.nextDeadline());
            next = std::min(next, static_cast<Cycle>(max_cycles));
            if (next > clock + 1) {
                fastForward(next - (clock + 1));
                skipBackoff = 1;
                skipProbeAt = 0;
            } else {
                skipBackoff = std::min<Cycle>(skipBackoff * 2, 32);
                skipProbeAt = clock + skipBackoff;
            }
        }
    }
}

void
Machine::failWedged(unsigned core_id)
{
    throw verify::SimError(
        verify::ErrorKind::Watchdog, "Machine",
        "core " + std::to_string(core_id) +
            " made no forward progress for " +
            std::to_string(watchdog.stalledFor(core_id)) +
            " cycles (stuck ROB head / nothing retiring)",
        {}, 0, diagnostic());
}

namespace
{

void
describeCache(std::string &out, const Cache &cache)
{
    const CacheConfig &c = cache.config();
    out += "  " + c.name + ": rq " +
           std::to_string(cache.rqOccupancy()) + "/" +
           std::to_string(c.rqSize) + ", pq " +
           std::to_string(cache.pqOccupancy()) + "/" +
           std::to_string(c.pqSize) + ", wq " +
           std::to_string(cache.wqOccupancy()) + ", mshr " +
           std::to_string(cache.mshrsInUse()) + "/" +
           std::to_string(c.mshrs) + "\n";
    for (const auto &m : cache.mshrSnapshot()) {
        out += "    mshr line " + std::to_string(m.pLine) +
               (m.isPrefetch ? " prefetch" : " demand") +
               (m.hadDemand ? "+demand-waiter" : "") +
               (m.sentBelow ? "" : " UNSENT") + ", age " +
               std::to_string(m.age) + "\n";
    }
    if (const Prefetcher *pf = cache.prefetcher()) {
        std::string state = pf->debugState();
        if (!state.empty())
            out += "    " + state + "\n";
    }
}

} // namespace

std::string
Machine::diagnostic() const
{
    std::string out = "machine diagnostic @ cycle " +
                      std::to_string(clock) + "\n";
    for (unsigned c = 0; c < cfg.cores; ++c) {
        const CoreNode &n = *nodes[c];
        out += "core " + std::to_string(c) + ": retired " +
               std::to_string(n.cpu->stats.instructions) + ", rob " +
               std::to_string(n.cpu->robOccupancy()) + "/" +
               std::to_string(cfg.core.robSize) + " (head id " +
               std::to_string(n.cpu->robHeadId()) +
               (n.cpu->robHeadDone() ? ", done" : ", waiting") +
               "), fetch buffer " +
               std::to_string(n.cpu->fetchBufferOccupancy()) +
               ", pending mem " +
               std::to_string(n.cpu->pendingAccessCount()) +
               ", outstanding loads " +
               std::to_string(n.cpu->outstandingLoadCount()) + "\n";
        describeCache(out, *n.l1iCache);
        describeCache(out, *n.l1dCache);
        describeCache(out, *n.l2Cache);
    }
    describeCache(out, *llc);
    out += "  DRAM: rq " + std::to_string(dram->rqOccupancy()) + ", wq " +
           std::to_string(dram->wqOccupancy()) + ", pending " +
           std::to_string(dram->pendingReads()) + "\n";
    return out;
}

RunStats
Machine::liveStats(unsigned c) const
{
    RunStats s;
    s.core = nodes[c]->cpu->stats;
    s.core.cycles = clock;  // wall-clock cycles of the machine
    s.l1i = nodes[c]->l1iCache->stats;
    s.l1d = nodes[c]->l1dCache->stats;
    s.l2 = nodes[c]->l2Cache->stats;
    s.llc = llc->stats;
    s.dtlb = nodes[c]->tu->dtlbStats();
    s.stlb = nodes[c]->tu->stlbStats();
    s.dram = dram->statsSnapshot();
    return s;
}

RunStats
Machine::coreSnapshot(unsigned c) const
{
    return snapshots[c];
}

RunStats
Machine::aggregateStats() const
{
    RunStats s;
    for (const auto &n : nodes) {
        addStatFields(s.core, n->cpu->stats);
        addStatFields(s.l1i, n->l1iCache->stats);
        addStatFields(s.l1d, n->l1dCache->stats);
        addStatFields(s.l2, n->l2Cache->stats);
        TlbStats dtlb = n->tu->dtlbStats();
        TlbStats stlb = n->tu->stlbStats();
        addStatFields(s.dtlb, dtlb);
        addStatFields(s.stlb, stlb);
    }
    s.core.cycles = clock;
    s.llc = llc->stats;
    s.dram = dram->statsSnapshot();
    return s;
}

} // namespace berti
