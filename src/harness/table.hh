/**
 * @file
 * Fixed-width text table printer used by the bench binaries to emit the
 * same rows/series the paper's tables and figures report.
 */

#ifndef BERTI_HARNESS_TABLE_HH
#define BERTI_HARNESS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace berti
{

class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double value, int precision = 3);

    /** Format as a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    void print(std::ostream &os) const;

    /** Machine-readable output: comma separation, no padding. */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

} // namespace berti

#endif // BERTI_HARNESS_TABLE_HH
