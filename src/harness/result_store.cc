#include "harness/result_store.hh"

#include <cstdlib>
#include <filesystem>

#include "mem/backend_registry.hh"
#include "obs/export.hh"
#include "sim/serialize.hh"
#include "verify/sim_error.hh"

namespace berti::harness
{

namespace
{

/** Entry-file header magic; bump the version on any layout change. */
constexpr const char *kHeaderMagic = "BERTI-RESULT v1";

std::string
hex16(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

/** Keep [A-Za-z0-9._-]; everything else becomes '_'. The trailing key
 *  hash keeps sanitised collisions harmless. */
std::string
sanitize(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '-' ||
                  c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

std::uint64_t
StoreKey::hash() const
{
    sim::Fnv64 h;
    h.add(workload);
    h.add(std::uint64_t{0});  // field separator
    h.add(spec);
    h.add(std::uint64_t{0});
    h.add(paramsHash);
    h.add(codeVersion);
    // Folded only when present so synthetic-workload keys (and every
    // store entry written before file workloads existed) stay stable.
    if (contentHash != 0) {
        h.add(std::uint64_t{0});
        h.add(contentHash);
    }
    return h.value();
}

std::string
StoreKey::stem() const
{
    return sanitize(spec) + "__" + sanitize(workload) + "-" +
           hex16(hash());
}

std::string
StoreKey::describe() const
{
    std::string out = workload + " | " + spec + " | params=" +
                      hex16(paramsHash) + " | code=" + codeVersion;
    if (contentHash != 0)
        out += " | content=" + hex16(contentHash);
    return out;
}

std::uint64_t
paramsFingerprint(const SimParams &params)
{
    sim::Fnv64 h;
    h.add(params.warmupInstructions);
    h.add(params.measureInstructions);
    h.add(static_cast<std::uint64_t>(params.dramMtps));
    // Sampling geometry, canonicalised so equivalent geometries share a
    // key: disabled sampling hashes as all-zero regardless of the
    // (ignored) window fields, an explicit stride equal to the implied
    // back-to-back stride hashes like stride 0, and checkpointDir is
    // excluded because checkpointing never perturbs results. Sampled
    // and full-run cells can therefore never collide.
    const SampleGeometry &g = params.sampling;
    bool on = g.enabled();
    h.add(static_cast<std::uint64_t>(on ? g.windowCount : 0));
    h.add(on ? g.windowWarmup : 0);
    h.add(on ? g.windowMeasure : 0);
    h.add(on ? g.stride() : 0);
    // Memory backend, canonicalised so equivalent specs share a key
    // ("dram:ddr4;sched=frfcfs" == "dram:ddr4" == ""). Folded only when
    // it differs from the default backend, so every store entry written
    // before backends existed keeps its key.
    std::string backend = mem::canonicalBackendSpec(params.memBackend);
    if (backend != mem::kDefaultBackendSpec) {
        h.add(std::uint64_t{0});
        h.add(std::string_view(backend));
    }
    return h.value();
}

std::string
resultStoreCodeVersion()
{
    if (const char *env = std::getenv("BERTI_CODE_VERSION")) {
        if (*env != '\0')
            return env;
    }
#ifdef BERTI_CODE_VERSION
    return BERTI_CODE_VERSION;
#else
    return "dev";
#endif
}

StoreKey
makeStoreKey(const std::string &workload, const std::string &spec,
             const SimParams &params, const std::string &codeVersion)
{
    StoreKey key;
    key.workload = workload;
    key.spec = spec;
    key.paramsHash = paramsFingerprint(params);
    key.codeVersion = codeVersion;
    return key;
}

StoreKey
makeStoreKey(const Workload &workload, const std::string &spec,
             const SimParams &params, const std::string &codeVersion)
{
    StoreKey key = makeStoreKey(workload.name, spec, params, codeVersion);
    key.contentHash = workload.contentHash;
    return key;
}

ResultStore::ResultStore(std::string directory) : dir(std::move(directory))
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        throw verify::SimError(verify::ErrorKind::Config, "ResultStore",
                               "cannot create store directory: " +
                                   ec.message(),
                               dir);
    }
    staleTmpRemoved = obs::removeStaleTempFiles(dir);
}

std::string
ResultStore::entryPath(const StoreKey &key) const
{
    return (std::filesystem::path(dir) / (key.stem() + ".result"))
        .string();
}

std::string
ResultStore::quarantinePath(const StoreKey &key) const
{
    return (std::filesystem::path(dir) / (key.stem() + ".failed"))
        .string();
}

bool
ResultStore::contains(const StoreKey &key) const
{
    std::error_code ec;
    return std::filesystem::exists(entryPath(key), ec);
}

void
ResultStore::remove(const StoreKey &key) const
{
    std::error_code ec;
    std::filesystem::remove(entryPath(key), ec);
}

void
ResultStore::store(const StoreKey &key,
                   const obs::MetricsSnapshot &snap) const
{
    std::string payload = obs::toJson(snap);
    std::string content = std::string(kHeaderMagic) + " " +
                          hex16(key.hash()) + " " +
                          hex16(sim::fnv1a64(payload)) + "\n" +
                          "key " + key.describe() + "\n" + payload;
    obs::writeFile(entryPath(key), content);
}

std::optional<obs::MetricsSnapshot>
ResultStore::load(const StoreKey &key) const
{
    std::string path = entryPath(key);
    std::string content;
    try {
        content = obs::readFile(path);
    } catch (const verify::SimError &) {
        return std::nullopt;  // plain miss: never written (or unreadable)
    }

    // Any structural defect from here on is corruption: unlink the
    // entry so the cell self-heals by recomputation, and report a miss.
    auto corrupt = [&path] {
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return std::nullopt;
    };

    std::size_t header_end = content.find('\n');
    if (header_end == std::string::npos)
        return corrupt();
    std::string header = content.substr(0, header_end);
    std::string expected_prefix = std::string(kHeaderMagic) + " " +
                                  hex16(key.hash()) + " ";
    if (header.size() != expected_prefix.size() + 16 ||
        header.compare(0, expected_prefix.size(), expected_prefix) != 0) {
        return corrupt();
    }
    std::string stored_sum = header.substr(expected_prefix.size());

    std::size_t key_end = content.find('\n', header_end + 1);
    if (key_end == std::string::npos)
        return corrupt();
    if (content.substr(header_end + 1, key_end - header_end - 1) !=
        "key " + key.describe()) {
        return corrupt();
    }

    std::string payload = content.substr(key_end + 1);
    if (hex16(sim::fnv1a64(payload)) != stored_sum)
        return corrupt();

    try {
        return obs::snapshotFromJson(payload, path);
    } catch (const verify::SimError &) {
        return corrupt();
    }
}

void
ResultStore::markQuarantined(const StoreKey &key,
                             const std::string &reason) const
{
    obs::writeFile(quarantinePath(key),
                   "key " + key.describe() + "\n" + reason + "\n");
}

std::optional<std::string>
ResultStore::loadQuarantine(const StoreKey &key) const
{
    std::string content;
    try {
        content = obs::readFile(quarantinePath(key));
    } catch (const verify::SimError &) {
        return std::nullopt;
    }
    std::size_t key_end = content.find('\n');
    std::string reason = key_end == std::string::npos
                             ? content
                             : content.substr(key_end + 1);
    while (!reason.empty() && reason.back() == '\n')
        reason.pop_back();
    return reason;
}

void
ResultStore::clearQuarantine(const StoreKey &key) const
{
    std::error_code ec;
    std::filesystem::remove(quarantinePath(key), ec);
}

} // namespace berti::harness
