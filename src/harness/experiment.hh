/**
 * @file
 * Experiment harness: named prefetcher configurations (Table III), the
 * single-core and multi-core simulation drivers, and speedup helpers.
 * Every bench binary is a thin loop over these calls.
 */

#ifndef BERTI_HARNESS_EXPERIMENT_HH
#define BERTI_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/berti.hh"
#include "energy/energy_model.hh"
#include "harness/machine.hh"
#include "obs/export.hh"
#include "trace/registry.hh"
#include "verify/fault_injector.hh"

namespace berti
{

namespace sim
{
struct SimOptions;
} // namespace sim

/**
 * A named L1D(+L2) prefetcher combination, e.g. "berti", "ip-stride",
 * "mlop+bingo", "none". The storage figure covers the prefetcher
 * structures only (Figure 7's x axis).
 */
struct PrefetcherSpec
{
    std::string name;
    PrefetcherFactory l1d;   //!< null = none
    PrefetcherFactory l2;    //!< null = none
    std::uint64_t storageBits = 0;
};

/**
 * Build a spec by name. Any registry name works at either level; the
 * '+' at paren depth 0 separates L1D from L2 ("mlop+bingo"), so
 * hybrid(...) composition specs flow through unchanged ("hybrid(
 * berti,cmc;select=ip)+bingo"). Hybrid names are canonicalized into
 * spec.name (prefetch::canonicalName), which is what result-store keys
 * record. An unknown or malformed name throws
 * verify::SimError(ErrorKind::Config).
 */
PrefetcherSpec makeSpec(const std::string &combo);

/**
 * Options-aware spec construction: hybrid specs pick up the
 * BERTI_HYBRID_* selector geometry from opt as their baseline, and the
 * canonical spec.name folds in every effective value that differs from
 * the compiled defaults. Plain names behave exactly as makeSpec(combo).
 */
PrefetcherSpec makeSpec(const std::string &combo,
                        const sim::SimOptions &opt);

/** Berti with a custom configuration (sensitivity benches). */
PrefetcherSpec makeBertiSpec(const BertiConfig &cfg,
                             const std::string &label = "berti");

/** Result of one single-core simulation region of interest. */
struct SimResult
{
    RunStats roi;
    double ipc = 0.0;
    EnergyBreakdown energy;
};

/**
 * Interval-sampling geometry (ARCHITECTURE.md, "Sampled simulation
 * intervals"). When enabled, simulate() replaces the single long
 * measurement region with windowCount measurement windows laid out over
 * the same generator stream: after the global warmup, window k starts
 * at instruction offset k * stride(), runs windowWarmup unmeasured
 * instructions to settle transient state, then measures windowMeasure
 * instructions. The aggregate over the windows reproduces the full-run
 * metrics within a small relative error at a fraction of the simulated
 * instructions.
 */
struct SampleGeometry
{
    /** Measurement windows; 0 disables sampling (full-run behaviour). */
    unsigned windowCount = 0;
    /** Unmeasured settle instructions at the head of each window. */
    std::uint64_t windowWarmup = 1000;
    /** Measured instructions per window (> 0 when enabled). */
    std::uint64_t windowMeasure = 8000;
    /** Window-start-to-window-start distance in instructions; 0 means
     *  back-to-back (windowWarmup + windowMeasure). Must cover one
     *  whole window — the gap instructions are simulated, unmeasured. */
    std::uint64_t windowStride = 0;
    /**
     * When non-empty, Machine checkpoints are saved as
     * <dir>/window-<k>.ckpt at each window start (before the window
     * warmup), so any window can later be re-simulated in isolation via
     * resumeSampledWindow(). Requires a checkpoint-capable machine
     * (see Machine::checkpointSupported). Never part of the result-store
     * fingerprint: checkpointing does not perturb simulated behaviour.
     */
    std::string checkpointDir;

    bool enabled() const { return windowCount > 0; }

    /** Canonical stride: the explicit one, or back-to-back windows. */
    std::uint64_t
    stride() const
    {
        return windowStride != 0 ? windowStride
                                 : windowWarmup + windowMeasure;
    }
};

/** The default per-channel DRAM data rate (the ddr4 preset's). */
inline constexpr unsigned kDefaultDramMtps = 6400;

/** Simulation lengths. Small by ChampSim standards but the generators
 *  are stationary, so measurements stabilise quickly. */
struct SimParams
{
    std::uint64_t warmupInstructions = 50000;
    std::uint64_t measureInstructions = 250000;

    /**
     * Legacy DRAM-speed knob (Figures 16-17 sweep it). Applied as a
     * per-channel mtps override on top of the selected memory backend
     * only when it differs from kDefaultDramMtps; the backend preset
     * supplies the rate otherwise. For the default backend this is
     * exactly the historical behaviour (the ddr4 preset is 6400).
     */
    unsigned dramMtps = kDefaultDramMtps;

    /**
     * Memory-backend spec (mem/backend_registry.hh grammar), e.g.
     * "dram:ddr5" or "dram:hbm;sched=fcfs". Empty = the default
     * dram:ddr4 backend (bit-identical to the pre-backend harness).
     * The canonical form is folded into paramsFingerprint() whenever
     * it differs from the default, so result-store keys never collide
     * across backends.
     */
    std::string memBackend;

    /** Interval sampling; disabled (full-run measurement) by default.
     *  The geometry is part of paramsFingerprint(), so sampled and
     *  full-run cells never collide in the result store. */
    SampleGeometry sampling;

    /** Force invariant auditing on (in addition to BERTI_VERIFY=1). */
    bool forceAudit = false;

    /** Optional fault injection; must outlive the simulation call. */
    verify::FaultInjector *faults = nullptr;

    /** Wall-clock budget per simulation, in milliseconds (0 = none).
     *  Exceeding it throws verify::SimError(ErrorKind::Timeout); the
     *  supervised sweep turns that into a quarantined cell instead of a
     *  hung matrix. */
    std::uint64_t wallClockBudgetMs = 0;
};

/**
 * Flat, diffable export of one SimResult: every ROI counter, the
 * derived per-level gauges, the headline "ipc" gauge and the energy
 * breakdown. This is the golden-stats schema — bit-identical for
 * identical simulations regardless of BERTI_JOBS.
 */
obs::MetricsSnapshot resultSnapshot(const SimResult &result);

/**
 * Inverse of resultSnapshot: rebuild a SimResult from its flat export.
 * Every ROI counter is copied back and the derived values (ipc, energy)
 * are recomputed from the ROI — both are pure functions of the
 * counters, so resultSnapshot(resultFromSnapshot(s)) == s bit-for-bit.
 * This is what lets the result store hand back cached cells that are
 * indistinguishable from freshly simulated ones.
 */
SimResult resultFromSnapshot(const obs::MetricsSnapshot &snap);

/**
 * Run one workload on the Table II machine with the given spec. When
 * params.sampling is enabled this is simulateSampled(...).aggregate —
 * every caller of simulate() (benches, supervisor, parallel matrices)
 * gets windowed sampling by flipping the params, with the result-store
 * key diverging automatically via paramsFingerprint().
 */
SimResult simulate(const Workload &workload, const PrefetcherSpec &spec,
                   const SimParams &params = {});

/** Multi-core: one workload per core, shared LLC/DRAM. Sampling-aware
 *  like simulate(): enabled sampling aggregates per-core windows. */
std::vector<SimResult> simulateMix(const std::vector<Workload> &mix,
                                   const PrefetcherSpec &spec,
                                   const SimParams &params = {});

/**
 * One windowed-sampling run (params.sampling must be enabled): the
 * per-window ROI results, their aggregate (a drop-in SimResult whose
 * counters are the component-wise sum over the measured windows), and
 * the dispersion statistics that turn the window sample into an error
 * estimate for the full-run value.
 */
struct SampledResult
{
    /** Per-window ROI results, in stream order. */
    std::vector<SimResult> windows;
    /** Instructions core 0 had retired when each window's measured
     *  region began (after the window warmup). */
    std::vector<std::uint64_t> windowStartInstruction;

    /** Windows summed; usable anywhere a full-run SimResult is. */
    SimResult aggregate;

    /** Total instructions actually simulated (global warmup + every
     *  window + inter-window gaps) — the cost side of the sampling
     *  trade, vs warmup + measure for a full run. */
    std::uint64_t instructionsSimulated = 0;

    /** Mean / sample stddev of the per-window IPCs, and the 95%
     *  confidence half-width (normal approximation,
     *  1.96 * stddev / sqrt(windows)). */
    double ipcMean = 0.0;
    double ipcStddev = 0.0;
    double ipcCiHalfWidth = 0.0;

    /** ipcCiHalfWidth / ipcMean: the relative confidence bound the
     *  sampled estimate claims for itself (0 when the mean is 0). */
    double ipcRelCi() const
    {
        return ipcMean > 0.0 ? ipcCiHalfWidth / ipcMean : 0.0;
    }
};

/**
 * Windowed-sampling simulation of one workload. Throws
 * verify::SimError(ErrorKind::Config) on a degenerate geometry
 * (no windows, empty measured region, stride shorter than a window)
 * and ErrorKind::Checkpoint when checkpointDir is set on a machine
 * that cannot checkpoint (fault injection, non-serializable spec).
 */
SampledResult simulateSampled(const Workload &workload,
                              const PrefetcherSpec &spec,
                              const SimParams &params);

/** Multi-core windowed sampling: out[i] is core i's SampledResult over
 *  the shared-machine windows (snapshots via Machine::coreSnapshot). */
std::vector<SampledResult> simulateMixSampled(
    const std::vector<Workload> &mix, const PrefetcherSpec &spec,
    const SimParams &params);

/**
 * Re-simulate one measurement window in isolation from the warm-state
 * checkpoint simulateSampled() saved at its start (single-core). The
 * returned window ROI is bit-identical to windows[k] of the sampled run
 * that wrote <checkpointDir>/window-<k>.ckpt — the resume path a sweep
 * uses to recompute or extend individual windows without replaying the
 * stream prefix.
 */
SimResult resumeSampledWindow(const Workload &workload,
                              const PrefetcherSpec &spec,
                              const SimParams &params,
                              const std::string &checkpointPath);

/** Sampled-vs-full error summary for the metrics the figures gate on. */
struct SampledError
{
    double ipcRel = 0.0;       //!< |sampled - full| / full IPC
    double l1dMpkiAbs = 0.0;   //!< |sampled - full| L1D demand MPKI
    double accuracyAbs = 0.0;  //!< |sampled - full| L1D pf accuracy
};

/** Compare a sampled aggregate against a full-run reference result. */
SampledError sampledVsFull(const SampledResult &sampled,
                           const SimResult &full);

/** results[i] = simulate(workloads[i], spec). */
std::vector<SimResult> runSuite(const std::vector<Workload> &workloads,
                                const PrefetcherSpec &spec,
                                const SimParams &params = {});

/**
 * Geometric-mean speedup of test over baseline, element-wise. The two
 * vectors must be the same length — a mismatch means workloads went
 * missing from one side and throws verify::SimError(ErrorKind::Config)
 * instead of silently truncating the geomean.
 */
double speedupGeomean(const std::vector<SimResult> &test,
                      const std::vector<SimResult> &baseline);

} // namespace berti

#endif // BERTI_HARNESS_EXPERIMENT_HH
