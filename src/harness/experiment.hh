/**
 * @file
 * Experiment harness: named prefetcher configurations (Table III), the
 * single-core and multi-core simulation drivers, and speedup helpers.
 * Every bench binary is a thin loop over these calls.
 */

#ifndef BERTI_HARNESS_EXPERIMENT_HH
#define BERTI_HARNESS_EXPERIMENT_HH

#include <string>
#include <vector>

#include "core/berti.hh"
#include "energy/energy_model.hh"
#include "harness/machine.hh"
#include "obs/export.hh"
#include "trace/registry.hh"
#include "verify/fault_injector.hh"

namespace berti
{

/**
 * A named L1D(+L2) prefetcher combination, e.g. "berti", "ip-stride",
 * "mlop+bingo", "none". The storage figure covers the prefetcher
 * structures only (Figure 7's x axis).
 */
struct PrefetcherSpec
{
    std::string name;
    PrefetcherFactory l1d;   //!< null = none
    PrefetcherFactory l2;    //!< null = none
    std::uint64_t storageBits = 0;
};

/**
 * Build a spec by name. L1D names: none, ip-stride, next-line, bop,
 * mlop, ipcp, berti. L2 names (after '+'): spp, spp-ppf, bingo, vldp,
 * ipcp, misb. Examples: "berti", "mlop+bingo", "ipcp+ipcp". An unknown
 * name throws verify::SimError(ErrorKind::Config).
 */
PrefetcherSpec makeSpec(const std::string &combo);

/** Berti with a custom configuration (sensitivity benches). */
PrefetcherSpec makeBertiSpec(const BertiConfig &cfg,
                             const std::string &label = "berti");

/** Result of one single-core simulation region of interest. */
struct SimResult
{
    RunStats roi;
    double ipc = 0.0;
    EnergyBreakdown energy;
};

/** Simulation lengths. Small by ChampSim standards but the generators
 *  are stationary, so measurements stabilise quickly. */
struct SimParams
{
    std::uint64_t warmupInstructions = 50000;
    std::uint64_t measureInstructions = 250000;
    unsigned dramMtps = 6400;

    /** Force invariant auditing on (in addition to BERTI_VERIFY=1). */
    bool forceAudit = false;

    /** Optional fault injection; must outlive the simulation call. */
    verify::FaultInjector *faults = nullptr;

    /** Wall-clock budget per simulation, in milliseconds (0 = none).
     *  Exceeding it throws verify::SimError(ErrorKind::Timeout); the
     *  supervised sweep turns that into a quarantined cell instead of a
     *  hung matrix. */
    std::uint64_t wallClockBudgetMs = 0;
};

/**
 * Flat, diffable export of one SimResult: every ROI counter, the
 * derived per-level gauges, the headline "ipc" gauge and the energy
 * breakdown. This is the golden-stats schema — bit-identical for
 * identical simulations regardless of BERTI_JOBS.
 */
obs::MetricsSnapshot resultSnapshot(const SimResult &result);

/**
 * Inverse of resultSnapshot: rebuild a SimResult from its flat export.
 * Every ROI counter is copied back and the derived values (ipc, energy)
 * are recomputed from the ROI — both are pure functions of the
 * counters, so resultSnapshot(resultFromSnapshot(s)) == s bit-for-bit.
 * This is what lets the result store hand back cached cells that are
 * indistinguishable from freshly simulated ones.
 */
SimResult resultFromSnapshot(const obs::MetricsSnapshot &snap);

/** Run one workload on the Table II machine with the given spec. */
SimResult simulate(const Workload &workload, const PrefetcherSpec &spec,
                   const SimParams &params = {});

/** Multi-core: one workload per core, shared LLC/DRAM. */
std::vector<SimResult> simulateMix(const std::vector<Workload> &mix,
                                   const PrefetcherSpec &spec,
                                   const SimParams &params = {});

/** results[i] = simulate(workloads[i], spec). */
std::vector<SimResult> runSuite(const std::vector<Workload> &workloads,
                                const PrefetcherSpec &spec,
                                const SimParams &params = {});

/**
 * Geometric-mean speedup of test over baseline, element-wise. The two
 * vectors must be the same length — a mismatch means workloads went
 * missing from one side and throws verify::SimError(ErrorKind::Config)
 * instead of silently truncating the geomean.
 */
double speedupGeomean(const std::vector<SimResult> &test,
                      const std::vector<SimResult> &baseline);

} // namespace berti

#endif // BERTI_HARNESS_EXPERIMENT_HH
