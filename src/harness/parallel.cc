#include "harness/parallel.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/options.hh"
#include "verify/sim_error.hh"

namespace berti
{

unsigned
parallelJobCount()
{
    unsigned jobs = sim::SimOptions::fromEnv().jobs;
    if (jobs)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
forEachIndexParallel(std::size_t total,
                     const std::function<void(std::size_t)> &fn,
                     unsigned jobs, const ProgressFn &progress)
{
    if (total == 0)
        return;

    unsigned pool = jobs ? jobs : parallelJobCount();
    if (pool > total)
        pool = static_cast<unsigned>(total);

    // One slot per job: workers never touch each other's slots, and the
    // post-join scan rethrows the lowest-index failure so error identity
    // does not depend on the schedule.
    std::vector<std::exception_ptr> failures(total);

    if (pool <= 1) {
        for (std::size_t i = 0; i < total; ++i) {
            try {
                fn(i);
            } catch (...) {
                failures[i] = std::current_exception();
            }
            if (progress)
                progress(i + 1, total);
        }
    } else {
        std::atomic<std::size_t> next{0};
        std::mutex progress_mutex;
        std::size_t done = 0;

        auto worker = [&] {
            for (;;) {
                std::size_t i = next.fetch_add(1);
                if (i >= total)
                    return;
                try {
                    fn(i);
                } catch (...) {
                    failures[i] = std::current_exception();
                }
                if (progress) {
                    std::lock_guard<std::mutex> lock(progress_mutex);
                    progress(++done, total);
                }
            }
        };

        std::vector<std::thread> threads;
        threads.reserve(pool);
        for (unsigned t = 0; t < pool; ++t)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
    }

    for (std::size_t i = 0; i < total; ++i) {
        if (failures[i])
            std::rethrow_exception(failures[i]);
    }
}

namespace
{

/** Fault injection shares one mutable injector across jobs; keep those
 *  runs serial so the injection sequence stays reproducible. */
unsigned
effectiveJobs(const SimParams &params, unsigned jobs)
{
    return params.faults ? 1 : jobs;
}

} // namespace

std::vector<SimResult>
runSuiteParallel(const std::vector<Workload> &workloads,
                 const PrefetcherSpec &spec, const SimParams &params,
                 unsigned jobs, const ProgressFn &progress)
{
    std::vector<SimResult> out(workloads.size());
    forEachIndexParallel(
        workloads.size(),
        [&](std::size_t i) { out[i] = simulate(workloads[i], spec, params); },
        effectiveJobs(params, jobs), progress);
    return out;
}

std::vector<std::vector<SimResult>>
runMatrixParallel(const std::vector<Workload> &workloads,
                  const std::vector<PrefetcherSpec> &specs,
                  const SimParams &params, unsigned jobs,
                  const ProgressFn &progress)
{
    const std::size_t w_count = workloads.size();
    std::vector<std::vector<SimResult>> out(
        specs.size(), std::vector<SimResult>(w_count));
    forEachIndexParallel(
        specs.size() * w_count,
        [&](std::size_t cell) {
            std::size_t s = cell / w_count;
            std::size_t w = cell % w_count;
            out[s][w] = simulate(workloads[w], specs[s], params);
        },
        effectiveJobs(params, jobs), progress);
    return out;
}

ProgressFn
stderrProgress(std::string label)
{
    return [label = std::move(label)](std::size_t done, std::size_t total) {
        std::fprintf(stderr, "\r[bench] %-24s %3zu/%zu", label.c_str(),
                     done, total);
        if (done == total)
            std::fprintf(stderr, "\n");
        std::fflush(stderr);
    };
}

} // namespace berti
