/**
 * @file
 * Content-addressed, crash-safe store of per-cell sweep results.
 *
 * A "cell" is one (workload, prefetcher spec) point of a sweep matrix
 * run with fixed SimParams on a fixed code version. Its result — the
 * deterministic resultSnapshot JSON — is cached under a key derived
 * from exactly those four coordinates, so an interrupted sweep resumes
 * by recomputing only the cells that never landed, and a stale cache
 * can never be served across a parameter or code change (the key
 * simply differs).
 *
 * Crash safety: every write goes through obs::writeFile (temp file +
 * atomic rename), every read verifies an FNV-1a-64 payload checksum
 * and the full key echo before the JSON is parsed. A corrupt or torn
 * entry is treated as a cache miss and unlinked — the store self-heals
 * by recomputation, it never propagates damaged data.
 */

#ifndef BERTI_HARNESS_RESULT_STORE_HH
#define BERTI_HARNESS_RESULT_STORE_HH

#include <cstdint>
#include <optional>
#include <string>

#include "harness/experiment.hh"
#include "obs/metrics.hh"

namespace berti::harness
{

/** The coordinates that address one sweep cell. */
struct StoreKey
{
    std::string workload;     //!< workload id, e.g. "mcf-like.472"
    std::string spec;         //!< prefetcher spec name, e.g. "berti"
    std::uint64_t paramsHash = 0;  //!< paramsFingerprint(SimParams)
    std::string codeVersion;  //!< resultStoreCodeVersion()

    /**
     * For file-backed (`file:`) workloads: the trace file's content
     * hash (Workload::contentHash), folded into hash() when non-zero.
     * Two different trace files that ever lived at the same path can
     * therefore never collide in the cache; synthetic workloads keep
     * their historical keys (0 is not folded).
     */
    std::uint64_t contentHash = 0;

    /** Content hash over every coordinate. */
    std::uint64_t hash() const;

    /** Filesystem-safe file stem: "<spec>__<workload>-<hash hex>". */
    std::string stem() const;

    /** Human-readable one-line rendering (logs and key echo). */
    std::string describe() const;
};

/**
 * Fingerprint of the SimParams fields that affect cell results:
 * warmup/measure lengths, DRAM speed, the canonical sampling geometry
 * (window count, per-window warmup/measure, stride) so sampled and
 * full-run cells always address distinct store entries, and the
 * canonical memory-backend spec (folded only when it differs from the
 * default dram:ddr4, so pre-backend store keys stay stable while
 * distinct backends can never share a cell). Changing any of these
 * invalidated every pre-sampling store key once, by design: old caches
 * recompute rather than risk serving results from different params.
 */
std::uint64_t paramsFingerprint(const SimParams &params);

/**
 * Code-version string folded into every key: the BERTI_CODE_VERSION
 * environment variable when set, else the compiled-in git revision
 * (the BERTI_CODE_VERSION macro, stamped by CMake), else "dev".
 */
std::string resultStoreCodeVersion();

/** Build the key for one cell. */
StoreKey makeStoreKey(const std::string &workload, const std::string &spec,
                      const SimParams &params,
                      const std::string &codeVersion =
                          resultStoreCodeVersion());

/** Build the key for one cell from a resolved Workload, folding the
 *  trace file's content hash in for file-backed workloads. */
StoreKey makeStoreKey(const Workload &workload, const std::string &spec,
                      const SimParams &params,
                      const std::string &codeVersion =
                          resultStoreCodeVersion());

/**
 * The on-disk store: one "<stem>.result" file per completed cell, one
 * "<stem>.failed" marker per quarantined cell. Construction creates
 * the directory and sweeps away stale *.tmp staging files left by a
 * killed writer.
 */
class ResultStore
{
  public:
    explicit ResultStore(std::string directory);

    const std::string &directory() const { return dir; }

    /** Stale .tmp files removed at construction (diagnostics). */
    std::size_t staleTempFilesRemoved() const { return staleTmpRemoved; }

    /**
     * Cached snapshot for a key, or nullopt on a miss. A present but
     * corrupt entry (bad header, checksum or key mismatch, unparsable
     * payload) counts as a miss AND is unlinked so the slot heals by
     * recomputation.
     */
    std::optional<obs::MetricsSnapshot> load(const StoreKey &key) const;

    /** Atomically persist a cell result (temp file + rename). */
    void store(const StoreKey &key, const obs::MetricsSnapshot &snap) const;

    /** Whether a (possibly corrupt) entry file exists for the key. */
    bool contains(const StoreKey &key) const;

    /** Drop a cached entry, if present. */
    void remove(const StoreKey &key) const;

    // ---------------------------------------------------- quarantine
    /** Persist a quarantine marker carrying the failure description. */
    void markQuarantined(const StoreKey &key,
                         const std::string &reason) const;

    /** The quarantine reason, or nullopt when the cell is not marked. */
    std::optional<std::string> loadQuarantine(const StoreKey &key) const;

    /** Lift a quarantine marker (the --rerun-failed tier). */
    void clearQuarantine(const StoreKey &key) const;

    /** Path of the entry file for a key (tests / diagnostics). */
    std::string entryPath(const StoreKey &key) const;

    /** Path of the quarantine marker for a key. */
    std::string quarantinePath(const StoreKey &key) const;

  private:
    std::string dir;
    std::size_t staleTmpRemoved = 0;
};

} // namespace berti::harness

#endif // BERTI_HARNESS_RESULT_STORE_HH
