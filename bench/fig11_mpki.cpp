/**
 * @file
 * Figure 11: average demand MPKI at L1D, L2 and LLC with each L1D
 * prefetcher (and without prefetching), per suite.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    auto m = runMatrix(workloads,
                       {"none", "ip-stride", "mlop", "ipcp", "berti"},
                       params);

    std::cout << "Figure 11: demand MPKI with L1D prefetchers\n\n";
    TextTable t({"prefetcher", "suite", "L1D-MPKI", "L2-MPKI",
                 "LLC-MPKI"});
    for (const char *name :
         {"none", "ip-stride", "mlop", "ipcp", "berti"}) {
        for (const char *suite : {"spec", "gap"}) {
            auto mpki = [](const CacheStats &c, const SimResult &s) {
                return c.mpki(s.roi.core.instructions);
            };
            t.addRow(
                {name, suite,
                 TextTable::num(suiteMean(workloads, m[name], suite,
                                          [&](const SimResult &s) {
                                              return mpki(s.roi.l1d, s);
                                          }),
                                1),
                 TextTable::num(suiteMean(workloads, m[name], suite,
                                          [&](const SimResult &s) {
                                              return mpki(s.roi.l2, s);
                                          }),
                                1),
                 TextTable::num(suiteMean(workloads, m[name], suite,
                                          [&](const SimResult &s) {
                                              return mpki(s.roi.llc, s);
                                          }),
                                1)});
        }
    }
    t.print(std::cout);
    return 0;
}
