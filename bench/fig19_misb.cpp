/**
 * @file
 * Figure 19: interaction with the MISB temporal prefetcher at L2 —
 * speedups of MLOP/IPCP/Berti with and without MISB, on CloudSuite
 * (where temporal patterns help) and on SPEC+GAP (where SPP-PPF is the
 * better L2 companion).
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    SimParams params = defaultParams();
    const std::vector<std::string> specs = {
        "ip-stride",  "mlop",      "ipcp",      "berti",
        "mlop+misb", "ipcp+misb", "berti+misb", "berti+spp-ppf",
    };

    std::cout << "Figure 19: speedup with and without MISB at L2 (vs "
                 "IP-stride)\n\n";
    TextTable t({"configuration", "cloud", "spec+gap"});

    auto cloud = suiteWorkloads("cloud");
    auto specgap = specGapWorkloads();
    auto mc = runMatrix(cloud, specs, params);
    auto ms = runMatrix(specgap, specs, params);

    for (const auto &name : specs) {
        if (name == "ip-stride")
            continue;
        t.addRow({name,
                  TextTable::num(suiteSpeedup(cloud, mc[name],
                                              mc["ip-stride"], "cloud")),
                  TextTable::num(suiteSpeedup(specgap, ms[name],
                                              ms["ip-stride"], ""))});
    }
    t.print(std::cout);
    return 0;
}
