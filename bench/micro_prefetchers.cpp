/**
 * @file
 * google-benchmark microbenchmarks of the prefetcher training +
 * prediction paths: simulated accesses per second for each design.
 * Useful when tuning the simulator's hot loop; not part of the paper.
 */

#include <benchmark/benchmark.h>

#include "core/berti.hh"
#include "prefetch/bingo.hh"
#include "prefetch/bop.hh"
#include "prefetch/ip_stride.hh"
#include "prefetch/ipcp.hh"
#include "prefetch/misb.hh"
#include "prefetch/mlop.hh"
#include "prefetch/ppf.hh"
#include "prefetch/pythia.hh"
#include "prefetch/sms.hh"
#include "prefetch/stream.hh"
#include "prefetch/spp.hh"
#include "prefetch/vldp.hh"

namespace
{

using namespace berti;

struct NullPort : PrefetchPort
{
    Cycle t = 0;

    bool issuePrefetch(Addr, FillLevel) override { return true; }
    double mshrOccupancy() const override { return 0.3; }
    Cycle now() const override { return t; }
};

template <typename Pf>
void
driveAccesses(benchmark::State &state)
{
    Pf pf;
    NullPort port;
    pf.bind(&port);
    std::uint64_t x = 0x2545F4914F6CDD1Dull;
    for (auto _ : state) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        port.t += 4;
        Prefetcher::AccessInfo a;
        // A mix of 8 strided streams and noise.
        unsigned s = x % 8;
        a.vLine = (s << 24) + ((port.t / 32) & 0xFFFF) + (x & 3);
        a.pLine = a.vLine;
        a.ip = 0x400000 + 4 * s;
        a.hit = (x & 7) != 0;
        pf.onAccess(a);
        if ((x & 15) == 0) {
            Prefetcher::FillInfo f;
            f.vLine = a.vLine;
            f.pLine = a.pLine;
            f.ip = a.ip;
            f.hadDemandWaiter = true;
            f.latency = 150;
            pf.onFill(f);
        }
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(driveAccesses<BertiPrefetcher>)->Name("berti/access");
BENCHMARK(driveAccesses<IpStridePrefetcher>)->Name("ip-stride/access");
BENCHMARK(driveAccesses<BopPrefetcher>)->Name("bop/access");
BENCHMARK(driveAccesses<MlopPrefetcher>)->Name("mlop/access");
BENCHMARK(driveAccesses<IpcpPrefetcher>)->Name("ipcp/access");
BENCHMARK(driveAccesses<VldpPrefetcher>)->Name("vldp/access");
BENCHMARK(driveAccesses<SppPrefetcher>)->Name("spp/access");
BENCHMARK(driveAccesses<SppPpfPrefetcher>)->Name("spp-ppf/access");
BENCHMARK(driveAccesses<BingoPrefetcher>)->Name("bingo/access");
BENCHMARK(driveAccesses<MisbPrefetcher>)->Name("misb/access");
BENCHMARK(driveAccesses<PythiaPrefetcher>)->Name("pythia/access");
BENCHMARK(driveAccesses<SmsPrefetcher>)->Name("sms/access");
BENCHMARK(driveAccesses<StreamPrefetcher>)->Name("stream/access");

BENCHMARK_MAIN();
