/**
 * @file
 * Figure 9: per-workload speedups of the L1D prefetchers over
 * IP-stride, for every SPEC CPU2017-like and GAP trace.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    // Real ChampSim traces requested via BERTI_TRACE_WORKLOADS ride
    // along as extra per-trace rows (suite "file").
    for (auto &w : extraTraceWorkloads())
        workloads.push_back(std::move(w));
    SimParams params = defaultParams();
    auto m = runMatrix(workloads, {"ip-stride", "mlop", "ipcp", "berti"},
                       params);

    std::cout << "Figure 9: per-trace speedup vs IP-stride\n\n";
    TextTable t({"workload", "suite", "MLOP", "IPCP", "Berti"});
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        double base = m["ip-stride"][i].ipc;
        t.addRow({workloads[i].name, workloads[i].suite,
                  TextTable::num(m["mlop"][i].ipc / base),
                  TextTable::num(m["ipcp"][i].ipc / base),
                  TextTable::num(m["berti"][i].ipc / base)});
    }
    t.addRow({"geomean-all", "",
              TextTable::num(
                  suiteSpeedup(workloads, m["mlop"], m["ip-stride"], "")),
              TextTable::num(
                  suiteSpeedup(workloads, m["ipcp"], m["ip-stride"], "")),
              TextTable::num(suiteSpeedup(workloads, m["berti"],
                                          m["ip-stride"], ""))});
    t.print(std::cout);
    return 0;
}
