/**
 * @file
 * Figure 22: sensitivity to Berti's table sizes. Scales the history
 * table, the table of deltas and the number of deltas per entry from
 * 0.25x to 4x independently and reports speedup vs IP-stride.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    const char *subset[] = {"stream-like.1", "lbm-like.2676",
                            "mcf-like.1554", "bwaves-like.1740",
                            "pr-urand", "cc-kron"};
    std::vector<Workload> workloads;
    for (const char *n : subset)
        workloads.push_back(findWorkload(n));

    SimParams params = defaultParams();

    const double scales[] = {0.25, 0.5, 1.0, 2.0, 4.0};
    std::vector<PrefetcherSpec> specs = {makeSpec("ip-stride")};
    for (double s : scales) {
        auto scaled = [s](unsigned v) {
            return std::max(1u, static_cast<unsigned>(v * s));
        };
        BertiConfig hist, dtab, ndel;
        hist.historySets = scaled(8);
        dtab.deltaTableEntries = scaled(16);
        ndel.deltasPerEntry = scaled(16);
        for (const BertiConfig &cfg : {hist, dtab, ndel})
            specs.push_back(makeBertiSpec(cfg));
    }
    auto grid = runSpecMatrix(workloads, specs, params, "fig22");
    const auto &base = grid[0];

    std::cout << "Figure 22: speedup vs size of the Berti tables "
                 "(1x = paper configuration)\n\n";
    TextTable t({"scale", "history-table", "table-of-deltas",
                 "num-deltas"});
    std::size_t cell = 1;
    for (double s : scales) {
        std::vector<std::string> row = {TextTable::num(s, 2) + "x"};
        for (int dim = 0; dim < 3; ++dim)
            row.push_back(TextTable::num(speedupGeomean(grid[cell++], base)));
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
