/**
 * @file
 * Heritage comparison: per-IP local deltas (this paper) versus the
 * per-page context of the DPC-3 precursor the paper cites ("Berti: a
 * per-page best-request-time delta prefetcher"). The per-IP context is
 * what separates interleaved streams; per-page folds every IP touching
 * a page into one delta history.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();

    std::vector<PrefetcherSpec> specs = {makeSpec("ip-stride")};
    for (bool per_page : {false, true}) {
        BertiConfig cfg;
        cfg.perPage = per_page;
        specs.push_back(
            makeBertiSpec(cfg, per_page ? "berti-page" : "berti-ip"));
    }
    auto grid = runSpecMatrix(workloads, specs, params, "abl_per_page");
    const auto &base = grid[0];

    std::cout << "Heritage: per-IP (MICRO 2022) vs per-page (DPC-3) "
                 "delta context\n\n";
    TextTable t({"context", "speedup-spec", "speedup-gap", "speedup-all",
                 "accuracy-spec+gap"});
    for (std::size_t v = 0; v < 2; ++v) {
        const auto &r = grid[v + 1];
        t.addRow({v == 1 ? "per-page (DPC-3)" : "per-IP (paper)",
                  TextTable::num(suiteSpeedup(workloads, r, base,
                                              "spec")),
                  TextTable::num(suiteSpeedup(workloads, r, base, "gap")),
                  TextTable::num(suiteSpeedup(workloads, r, base, "")),
                  TextTable::pct(suiteAccuracy(workloads, r, ""))});
    }
    t.print(std::cout);
    return 0;
}
