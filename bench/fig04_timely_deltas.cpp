/**
 * @file
 * Figures 2 and 4 (didactic): strides vs local deltas vs *timely* local
 * deltas. Replays the paper's exact example — one IP touching lines
 * 2, 5, 7, 10, 12, 15 — against a Berti instance with a controlled
 * fetch latency, and prints which deltas were learned as timely at
 * each step.
 */

#include <iostream>

#include "core/berti.hh"
#include "harness/table.hh"

namespace
{

struct Port : berti::PrefetchPort
{
    berti::Cycle t = 0;

    bool issuePrefetch(berti::Addr, berti::FillLevel) override
    {
        return true;
    }
    double mshrOccupancy() const override { return 0.0; }
    berti::Cycle now() const override { return t; }
};

} // namespace

int
main()
{
    using namespace berti;

    BertiPrefetcher b;
    Port port;
    b.bind(&port);

    const Cycle latency = 60;
    const Addr ip = 0x401cb0;
    struct Event
    {
        Addr line;
        Cycle access;
    };
    const Event events[] = {{2, 100}, {5, 130}, {7, 150},
                            {10, 165}, {12, 175}, {15, 200}};

    std::cout << "Figure 2/4: timely local deltas for the access "
                 "sequence 2, 5, 7, 10, 12, 15 (fetch latency "
              << latency << " cycles)\n\n";
    TextTable t({"access", "time", "strides-so-far",
                 "timely deltas found at fill"});

    Addr prev = 0;
    bool have_prev = false;
    for (const Event &e : events) {
        std::uint64_t before = b.timelyDeltasFound;

        port.t = e.access;
        Prefetcher::AccessInfo a;
        a.ip = ip;
        a.vLine = e.line;
        a.pLine = e.line;
        a.hit = false;
        b.onAccess(a);

        port.t = e.access + latency;
        Prefetcher::FillInfo f;
        f.ip = ip;
        f.vLine = e.line;
        f.pLine = e.line;
        f.hadDemandWaiter = true;
        f.latency = latency;
        b.onFill(f);

        std::string stride = have_prev
            ? "+" + std::to_string(e.line - prev) : "-";
        t.addRow({std::to_string(e.line), std::to_string(e.access),
                  stride,
                  std::to_string(b.timelyDeltasFound - before) +
                      " new timely"});
        prev = e.line;
        have_prev = true;
    }
    t.print(std::cout);

    std::cout << "\nLearned delta table for the IP (coverage is per "
                 "current phase):\n";
    TextTable d({"delta", "coverage", "status"});
    for (const auto &info : b.deltasFor(ip)) {
        const char *status = "no-pref";
        switch (info.status) {
          case BertiPrefetcher::DeltaStatus::L1Pref:
            status = "L1";
            break;
          case BertiPrefetcher::DeltaStatus::L2Pref:
          case BertiPrefetcher::DeltaStatus::L2PrefRepl:
            status = "L2";
            break;
          default:
            break;
        }
        d.addRow({(info.delta > 0 ? "+" : "") +
                      std::to_string(info.delta),
                  std::to_string(info.coverage), status});
    }
    d.print(std::cout);
    std::cout << "\nAs in the paper: +10 is seen twice (from 2->12 and "
                 "5->15), +13 once; short deltas like +3 are local but "
                 "never timely.\n";
    return 0;
}
