/**
 * @file
 * Section IV-J ablation: effect of the latency-counter width. The
 * paper reports no gain from 32-bit counters and a clear loss with
 * 4-bit counters (every DRAM-latency fill overflows and is skipped).
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    auto base = runSuite(workloads, makeSpec("ip-stride"), params);

    std::cout << "Ablation (section IV-J): latency-counter width\n\n";
    TextTable t({"latency-bits", "SPEC17", "GAP", "all"});
    for (unsigned bits : {4u, 12u, 32u}) {
        BertiConfig cfg;
        cfg.latencyBits = bits;
        auto r = runSuite(workloads, makeBertiSpec(cfg), params);
        t.addRow({std::to_string(bits),
                  TextTable::num(
                      suiteSpeedup(workloads, r, base, "spec")),
                  TextTable::num(suiteSpeedup(workloads, r, base, "gap")),
                  TextTable::num(suiteSpeedup(workloads, r, base, ""))});
        std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, "\n");
    t.print(std::cout);
    return 0;
}
