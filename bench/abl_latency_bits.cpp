/**
 * @file
 * Section IV-J ablation: effect of the latency-counter width. The
 * paper reports no gain from 32-bit counters and a clear loss with
 * 4-bit counters (every DRAM-latency fill overflows and is skipped).
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();

    const unsigned widths[] = {4u, 12u, 32u};
    std::vector<PrefetcherSpec> specs = {makeSpec("ip-stride")};
    for (unsigned bits : widths) {
        BertiConfig cfg;
        cfg.latencyBits = bits;
        specs.push_back(
            makeBertiSpec(cfg, "berti-lat" + std::to_string(bits)));
    }
    auto grid = runSpecMatrix(workloads, specs, params, "abl_latency_bits");
    const auto &base = grid[0];

    std::cout << "Ablation (section IV-J): latency-counter width\n\n";
    TextTable t({"latency-bits", "SPEC17", "GAP", "all"});
    for (std::size_t v = 0; v < std::size(widths); ++v) {
        const auto &r = grid[v + 1];
        t.addRow({std::to_string(widths[v]),
                  TextTable::num(
                      suiteSpeedup(workloads, r, base, "spec")),
                  TextTable::num(suiteSpeedup(workloads, r, base, "gap")),
                  TextTable::num(suiteSpeedup(workloads, r, base, ""))});
    }
    t.print(std::cout);
    return 0;
}
