/**
 * @file
 * Tables II and III: the simulated baseline system parameters and the
 * evaluated prefetcher configurations, printed from the live config
 * structs (so the tables cannot drift from the code).
 */

#include "common.hh"
#include "harness/machine.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    MachineConfig m = MachineConfig::sunnyCove(1);
    std::cout << "Table II: simulation parameters of the baseline "
                 "system\n\n";
    TextTable t({"component", "configuration"});
    auto cache_row = [&](const char *name, const CacheConfig &c) {
        t.addRow({name,
                  std::to_string(c.sets * c.ways * kLineSize / 1024) +
                      " KB, " + std::to_string(c.ways) + "-way, " +
                      std::to_string(c.latency) + " cycles, " +
                      std::to_string(c.mshrs) + " MSHRs, repl=" +
                      makeReplPolicy(c.repl, c.sets, c.ways)->name()});
    };
    t.addRow({"Core",
              "out-of-order, hashed-perceptron branch predictor, " +
                  std::to_string(m.core.dispatchWidth) + "-issue, " +
                  std::to_string(m.core.retireWidth) + "-retire, " +
                  std::to_string(m.core.robSize) + "-entry ROB"});
    t.addRow({"L1 dTLB", "64 entries, 4-way, 1 cycle"});
    t.addRow({"STLB", "2048 entries, 16-way, 8 cycles"});
    cache_row("L1I", m.l1i);
    cache_row("L1D", m.l1d);
    cache_row("L2", m.l2);
    cache_row("LLC (per core)", m.llc);
    t.addRow({"DRAM",
              "1 channel / 4 cores, " + std::to_string(m.dram.mtps) +
                  " MTPS, FR-FCFS, " + std::to_string(m.dram.banks) +
                  " banks, 4 KB open-page rows, tRP=tRCD=tCAS=" +
                  std::to_string(m.dram.tRp) + " cycles"});
    t.print(std::cout);

    std::cout << "\nTable III: evaluated prefetcher configurations\n\n";
    TextTable p({"prefetcher", "level", "storage (KB)"});
    struct Row { const char *name; const char *level; };
    for (const Row r : std::initializer_list<Row>{
             {"ip-stride", "L1D (baseline)"},
             {"mlop", "L1D"},
             {"ipcp", "L1D"},
             {"berti", "L1D"},
             {"none+spp-ppf", "L2"},
             {"none+bingo", "L2"},
             {"none+vldp", "L2"},
             {"none+misb", "L2 (temporal)"}}) {
        p.addRow({r.name, r.level,
                  TextTable::num(storageKb(r.name), 2)});
    }
    p.print(std::cout);
    return 0;
}
