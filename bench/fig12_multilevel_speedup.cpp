/**
 * @file
 * Figure 12: speedup of multi-level prefetching combinations (L1D+L2)
 * over the IP-stride baseline, per suite, against Berti alone.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    const std::vector<std::string> specs = {
        "ip-stride",  "berti",        "mlop+bingo", "mlop+spp-ppf",
        "berti+bingo", "berti+spp-ppf", "ipcp+ipcp",
    };
    auto m = runMatrix(workloads, specs, params);

    std::cout << "Figure 12: multi-level prefetching speedup vs "
                 "IP-stride\n\n";
    TextTable t({"configuration", "SPEC17", "GAP", "all"});
    for (const auto &name : specs) {
        if (name == "ip-stride")
            continue;
        t.addRow({name,
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], "spec")),
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], "gap")),
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], ""))});
    }
    t.print(std::cout);
    return 0;
}
