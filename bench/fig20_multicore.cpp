/**
 * @file
 * Figure 20: 4-core heterogeneous mixes (randomly drawn from the
 * memory-intensive SPEC-like + GAP pool), speedup relative to the
 * 4-core system with IP-stride at every L1D. Per-core speedups are
 * combined with the geometric mean per mix, then averaged.
 */

#include "common.hh"
#include "sim/rng.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    const unsigned kMixes = 8;
    const unsigned kCores = 4;

    auto pool = specGapWorkloads();
    Rng rng(0x20221001);
    std::vector<std::vector<Workload>> mixes;
    for (unsigned i = 0; i < kMixes; ++i) {
        std::vector<Workload> mix;
        for (unsigned c = 0; c < kCores; ++c)
            mix.push_back(pool[rng.nextBounded(pool.size())]);
        mixes.push_back(mix);
    }

    SimParams params = defaultParams();
    params.warmupInstructions /= 2;   // 4 cores: keep runtime sane
    params.measureInstructions /= 2;

    const std::vector<std::string> specs = {
        "ip-stride", "mlop", "ipcp", "berti",
        "mlop+bingo", "berti+spp-ppf", "ipcp+ipcp",
    };

    std::cout << "Figure 20: 4-core mix speedups vs IP-stride (" << kMixes
              << " random heterogeneous mixes)\n\n";

    // Every (spec, mix) 4-core simulation is an independent job;
    // grid[spec][mix] holds the per-core results in input order.
    std::vector<PrefetcherSpec> spec_objs;
    for (const auto &name : specs)
        spec_objs.push_back(makeSpec(name));
    std::vector<std::vector<std::vector<SimResult>>> grid(
        specs.size(), std::vector<std::vector<SimResult>>(mixes.size()));
    forEachIndexParallel(
        specs.size() * mixes.size(),
        [&](std::size_t cell) {
            std::size_t s = cell / mixes.size();
            std::size_t mi = cell % mixes.size();
            grid[s][mi] = simulateMix(mixes[mi], spec_objs[s], params);
        },
        /*jobs=*/0, stderrProgress("fig20 mixes"));

    // speedups[spec][mix]
    std::map<std::string, std::vector<double>> speedups;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        if (specs[s] == "ip-stride")
            continue;
        for (std::size_t mi = 0; mi < mixes.size(); ++mi) {
            std::vector<double> ratio;
            for (unsigned c = 0; c < kCores; ++c)
                ratio.push_back(grid[s][mi][c].ipc / grid[0][mi][c].ipc);
            speedups[specs[s]].push_back(
                geomean(ratio.data(), ratio.size()));
        }
    }

    TextTable t({"configuration", "mean-mix-speedup", "best-mix",
                 "worst-mix"});
    for (const auto &name : specs) {
        if (name == "ip-stride")
            continue;
        const auto &v = speedups[name];
        double best = v[0], worst = v[0];
        for (double s : v) {
            best = std::max(best, s);
            worst = std::min(worst, s);
        }
        t.addRow({name, TextTable::num(geomean(v.data(), v.size())),
                  TextTable::num(best), TextTable::num(worst)});
    }
    t.print(std::cout);
    return 0;
}
