/**
 * @file
 * Simulator-speed harness: how fast does the simulator itself run?
 *
 * For one workload per access-pattern class (low-MLP pointer chasing,
 * streaming, irregular/mixed) and spec in {none, berti}, the harness
 * runs the identical simulation twice — quiescence cycle-skip off and
 * on — and reports host throughput as simulated Mcycles/s and demand
 * Maccesses/s plus the skip speedup. The two runs must produce
 * byte-identical result snapshots (the skip's core invariant); any
 * divergence fails the bench.
 *
 * Output: a human-readable table on stdout and a metrics-snapshot JSON
 * document (--out, default BENCH_simspeed.json) in the standard
 * versioned schema, so run_benches.sh and CI diff it with the same
 * tooling as every other stats artifact.
 *
 * CI gate: --baseline <file> --max-regress <frac> re-reads a previous
 * document and fails when any throughput gauge drops by more than the
 * given fraction. Wall-clock numbers are noisy across hosts, so the
 * checked-in baseline is a conservative floor, not a measured value.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common.hh"
#include "harness/machine.hh"
#include "obs/export.hh"
#include "prefetch/registry.hh"
#include "sim/options.hh"
#include "trace/registry.hh"

namespace
{

using namespace berti;
using namespace berti::bench;

struct ClassDef
{
    const char *cls;       //!< access-pattern class label
    const char *workload;  //!< registered workload name
};

// One representative per class the paper's analysis distinguishes. The
// pointer chase is the low-MLP case the cycle-skip targets: one load in
// flight, hundreds of provably idle cycles per miss.
constexpr ClassDef kClasses[] = {
    {"pointer-chase", "mcf-like.1536"},
    {"streaming", "bwaves-like.2609"},
    {"mixed", "cactu-like.709"},
};

constexpr const char *kSpecs[] = {"none", "berti"};

struct Measurement
{
    double seconds = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t accesses = 0;
    std::uint64_t skipped = 0;
    std::string snapshotJson;  //!< resultSnapshot, for invariance check

    double mcyclesPerSec() const
    {
        return seconds > 0 ? static_cast<double>(cycles) / seconds / 1e6
                           : 0.0;
    }
    double maccessesPerSec() const
    {
        return seconds > 0
                   ? static_cast<double>(accesses) / seconds / 1e6
                   : 0.0;
    }
};

Measurement
runOnce(const Workload &workload, const PrefetcherSpec &spec,
        const SimParams &params, const sim::SimOptions &opt,
        bool cycle_skip)
{
    auto gen = workload.make();
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    cfg.applyOptions(opt);
    cfg.cycleSkip = cycle_skip;
    cfg.l1dPrefetcher = spec.l1d;
    cfg.l2Prefetcher = spec.l2;

    Machine machine(cfg, {gen.get()});

    auto t0 = std::chrono::steady_clock::now();
    machine.run(params.warmupInstructions);
    RunStats start = machine.liveStats(0);
    machine.run(params.measureInstructions);
    RunStats end = machine.liveStats(0);
    auto t1 = std::chrono::steady_clock::now();

    SimResult r;
    r.roi = end.diff(start);
    r.ipc = r.roi.core.ipc();

    Measurement m;
    m.seconds = std::chrono::duration<double>(t1 - t0).count();
    m.cycles = machine.cycle();
    m.accesses = end.l1d.demandAccesses;
    m.skipped = machine.skippedCycles();
    m.snapshotJson = obs::toJson(resultSnapshot(r));
    return m;
}

/** Throughput gauges under "<workload>.<spec>.<mode>." prefixes. */
void
recordGauges(obs::MetricsSnapshot &snap, const std::string &prefix,
             const Measurement &m)
{
    snap.setGauge(prefix + "mcycles_per_s", m.mcyclesPerSec());
    snap.setGauge(prefix + "maccesses_per_s", m.maccessesPerSec());
    snap.setGauge(prefix + "skipped_frac",
                  m.cycles ? static_cast<double>(m.skipped) / m.cycles
                           : 0.0);
}

int
checkBaseline(const obs::MetricsSnapshot &actual,
              const std::string &baseline_path, double max_regress)
{
    std::ifstream in(baseline_path);
    if (!in) {
        std::fprintf(stderr, "perf_simspeed: cannot read baseline %s\n",
                     baseline_path.c_str());
        return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    obs::MetricsSnapshot base =
        obs::snapshotFromJson(buf.str(), baseline_path);

    int failures = 0;
    for (const auto &kv : base.values()) {
        // Gate throughput floors and the skip speedups; skipped_frac
        // is informational.
        if (kv.second.kind != obs::MetricKind::Gauge ||
            (kv.first.find("_per_s") == std::string::npos &&
             kv.first.find("skip_speedup") == std::string::npos))
            continue;
        if (!actual.contains(kv.first)) {
            std::fprintf(stderr, "REGRESSION %s: missing from run\n",
                         kv.first.c_str());
            ++failures;
            continue;
        }
        double measured = actual.gauge(kv.first);
        double floor = kv.second.d * (1.0 - max_regress);
        if (measured < floor) {
            std::fprintf(stderr,
                         "REGRESSION %s: %.3f < floor %.3f "
                         "(baseline %.3f, max-regress %.0f%%)\n",
                         kv.first.c_str(), measured, floor, kv.second.d,
                         max_regress * 100.0);
            ++failures;
        }
    }
    if (failures == 0)
        std::printf("baseline check OK (%s, max-regress %.0f%%)\n",
                    baseline_path.c_str(), max_regress * 100.0);
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    sim::SimOptions opt = sim::SimOptions::fromEnvAndArgs(argc, argv);

    std::string out_path = "BENCH_simspeed.json";
    std::string baseline_path;
    double max_regress = 0.20;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind("--out=", 0) == 0) {
            out_path = a.substr(6);
        } else if (a.rfind("--baseline=", 0) == 0) {
            baseline_path = a.substr(11);
        } else if (a.rfind("--max-regress=", 0) == 0) {
            max_regress = std::atof(a.c_str() + 14);
        } else {
            std::fprintf(stderr, "perf_simspeed: unknown argument %s\n",
                         a.c_str());
            return 2;
        }
    }

    SimParams params = defaultParams(opt);

    obs::MetricsSnapshot snap;
    int rc = 0;

    std::printf("%-14s %-7s %11s %11s %11s %9s %9s\n", "class", "spec",
                "Mcyc/s:off", "Mcyc/s:on", "speedup", "Macc/s:on",
                "skip%");
    for (const ClassDef &c : kClasses) {
        const Workload &w = findWorkload(c.workload);
        for (const char *spec_name : kSpecs) {
            PrefetcherSpec spec = makeSpec(spec_name);
            Measurement off =
                runOnce(w, spec, params, opt, /*cycle_skip=*/false);
            Measurement on =
                runOnce(w, spec, params, opt, /*cycle_skip=*/true);

            // The tentpole invariant: skipping provably idle cycles
            // must not change a single statistic.
            if (off.snapshotJson != on.snapshotJson) {
                std::fprintf(stderr,
                             "DIVERGENCE: %s/%s differs between "
                             "cycle-skip off and on\n",
                             c.cls, spec_name);
                rc = 1;
            }

            double speedup =
                off.mcyclesPerSec() > 0
                    ? on.mcyclesPerSec() / off.mcyclesPerSec()
                    : 0.0;
            std::printf("%-14s %-7s %11.2f %11.2f %10.2fx %9.2f %8.1f%%\n",
                        c.cls, spec_name, off.mcyclesPerSec(),
                        on.mcyclesPerSec(), speedup,
                        on.maccessesPerSec(),
                        100.0 * (on.cycles
                                     ? static_cast<double>(on.skipped) /
                                           on.cycles
                                     : 0.0));

            std::string prefix =
                sanitizeLabel(c.cls) + "." + sanitizeLabel(spec_name);
            recordGauges(snap, prefix + ".skip_off.", off);
            recordGauges(snap, prefix + ".skip_on.", on);
            snap.setGauge(prefix + ".skip_speedup", speedup);
        }
    }

    obs::writeFile(out_path, obs::toJson(snap));
    std::printf("wrote %s\n", out_path.c_str());

    if (!baseline_path.empty()) {
        int brc = checkBaseline(snap, baseline_path, max_regress);
        if (brc != 0)
            rc = brc;
    }
    return rc;
}
