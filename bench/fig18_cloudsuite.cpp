/**
 * @file
 * Figure 18: CloudSuite-like speedups for L1D prefetchers and
 * multi-level combinations, with the per-workload breakdown (the paper
 * highlights Classification as the one benchmark where only Berti
 * helps, and the low data-MPKI regime overall).
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = suiteWorkloads("cloud");
    SimParams params = defaultParams();
    const std::vector<std::string> specs = {
        "ip-stride", "mlop", "ipcp", "berti",
        "mlop+bingo", "berti+spp-ppf",
    };
    auto m = runMatrix(workloads, specs, params);

    std::cout << "Figure 18: CloudSuite speedup vs IP-stride\n\n";
    TextTable t({"workload", "MLOP", "IPCP", "Berti", "MLOP+Bingo",
                 "Berti+SPP-PPF", "L1D-MPKI", "L1I-MPKI"});
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        double base = m["ip-stride"][i].ipc;
        const SimResult &none = m["ip-stride"][i];
        t.addRow({workloads[i].name,
                  TextTable::num(m["mlop"][i].ipc / base),
                  TextTable::num(m["ipcp"][i].ipc / base),
                  TextTable::num(m["berti"][i].ipc / base),
                  TextTable::num(m["mlop+bingo"][i].ipc / base),
                  TextTable::num(m["berti+spp-ppf"][i].ipc / base),
                  TextTable::num(none.roi.l1d.mpki(
                                     none.roi.core.instructions), 1),
                  TextTable::num(none.roi.l1i.mpki(
                                     none.roi.core.instructions), 1)});
    }
    t.addRow({"geomean",
              TextTable::num(suiteSpeedup(workloads, m["mlop"],
                                          m["ip-stride"], "cloud")),
              TextTable::num(suiteSpeedup(workloads, m["ipcp"],
                                          m["ip-stride"], "cloud")),
              TextTable::num(suiteSpeedup(workloads, m["berti"],
                                          m["ip-stride"], "cloud")),
              TextTable::num(suiteSpeedup(workloads, m["mlop+bingo"],
                                          m["ip-stride"], "cloud")),
              TextTable::num(suiteSpeedup(workloads, m["berti+spp-ppf"],
                                          m["ip-stride"], "cloud")),
              "", ""});
    t.print(std::cout);
    return 0;
}
