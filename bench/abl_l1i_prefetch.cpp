/**
 * @file
 * Front-end study: the paper's CloudSuite section observes that the
 * L1I MPKI of server workloads is high while their data MPKI is low,
 * limiting what any L1D prefetcher can do. This bench adds a simple
 * next-line instruction prefetcher at the L1I and measures how much of
 * the CloudSuite gap it recovers relative to data-side prefetching.
 */

#include "common.hh"
#include "harness/machine.hh"
#include "prefetch/next_line.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = suiteWorkloads("cloud");
    SimParams params = defaultParams();

    auto run = [&](bool l1i_pf, const std::string &l1d_spec) {
        std::vector<SimResult> out(workloads.size());
        forEachIndexParallel(workloads.size(), [&](std::size_t i) {
            auto gen = workloads[i].make();
            MachineConfig cfg = MachineConfig::sunnyCove(1);
            PrefetcherSpec spec = makeSpec(l1d_spec);
            cfg.l1dPrefetcher = spec.l1d;
            cfg.l2Prefetcher = spec.l2;
            if (l1i_pf) {
                cfg.l1iPrefetcher = [] {
                    return std::make_unique<NextLinePrefetcher>(2);
                };
            }
            Machine machine(cfg, {gen.get()});
            machine.run(params.warmupInstructions);
            RunStats start = machine.liveStats(0);
            machine.run(params.measureInstructions);
            SimResult r;
            r.roi = machine.liveStats(0).diff(start);
            r.ipc = r.roi.core.ipc();
            out[i] = r;
        });
        return out;
    };

    auto base = run(false, "ip-stride");

    std::cout << "Front-end study: next-line L1I prefetching on "
                 "CloudSuite (speedup vs IP-stride, no L1I prefetch)\n\n";
    TextTable t({"configuration", "speedup", "L1I-MPKI"});
    struct Case
    {
        const char *label;
        bool l1i;
        const char *l1d;
    };
    const Case cases[] = {
        {"berti (data only)", false, "berti"},
        {"L1I next-line only", true, "ip-stride"},
        {"berti + L1I next-line", true, "berti"},
    };
    for (const Case &c : cases) {
        auto r = run(c.l1i, c.l1d);
        t.addRow({c.label,
                  TextTable::num(suiteSpeedup(workloads, r, base,
                                              "cloud")),
                  TextTable::num(
                      suiteMean(workloads, r, "cloud",
                                [](const SimResult &s) {
                                    return s.roi.l1i.mpki(
                                        s.roi.core.instructions);
                                }),
                      1)});
    }
    t.print(std::cout);
    return 0;
}
