/**
 * @file
 * Figure 15: dynamic energy of the memory hierarchy (L1D+L2+LLC+DRAM),
 * normalised to no prefetching, per suite.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    const std::vector<std::string> specs = {
        "none", "ip-stride", "mlop", "ipcp", "berti",
        "mlop+bingo", "mlop+spp-ppf", "berti+bingo", "berti+spp-ppf",
    };
    auto m = runMatrix(workloads, specs, params);

    std::cout << "Figure 15: dynamic energy normalised to no "
                 "prefetching\n\n";
    TextTable t({"configuration", "SPEC17", "GAP"});
    auto energy_pi = [](const SimResult &s) {
        return s.energy.total() /
               static_cast<double>(s.roi.core.instructions);
    };
    for (const auto &name : specs) {
        auto norm = [&](const char *suite) {
            double base =
                suiteMean(workloads, m["none"], suite, energy_pi);
            double val = suiteMean(workloads, m[name], suite, energy_pi);
            return base > 0 ? val / base : 0.0;
        };
        t.addRow({name, TextTable::num(norm("spec")),
                  TextTable::num(norm("gap"))});
    }
    t.print(std::cout);
    return 0;
}
