/**
 * @file
 * Figure 14: traffic between hierarchy levels (demand + prefetch +
 * writeback requests), normalised to no prefetching, per suite.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    const std::vector<std::string> specs = {
        "none", "ip-stride", "mlop", "ipcp", "berti",
        "mlop+bingo", "berti+bingo", "berti+spp-ppf",
    };
    auto m = runMatrix(workloads, specs, params);

    std::cout << "Figure 14: memory-hierarchy traffic normalised to no "
                 "prefetching\n\n";
    TextTable t({"configuration", "suite", "L1D->L2", "L2->LLC",
                 "LLC->DRAM"});
    auto per_instr = [](double v, const SimResult &s) {
        return v / static_cast<double>(s.roi.core.instructions);
    };
    for (const auto &name : specs) {
        for (const char *suite : {"spec", "gap"}) {
            auto norm = [&](auto metric) {
                double base = suiteMean(workloads, m["none"], suite,
                                        metric);
                double val = suiteMean(workloads, m[name], suite,
                                       metric);
                return base > 0 ? val / base : 0.0;
            };
            t.addRow(
                {name, suite,
                 TextTable::num(norm([&](const SimResult &s) {
                     return per_instr(trafficBelow(s.roi.l1d), s);
                 })),
                 TextTable::num(norm([&](const SimResult &s) {
                     return per_instr(trafficBelow(s.roi.l2), s);
                 })),
                 TextTable::num(norm([&](const SimResult &s) {
                     return per_instr(trafficBelow(s.roi.llc), s);
                 }))});
        }
    }
    t.print(std::cout);
    return 0;
}
