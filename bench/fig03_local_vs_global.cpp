/**
 * @file
 * Figure 3: the best deltas are per-IP (local), not global. Runs the
 * mcf-like workload, then dumps the local deltas Berti selected for
 * each of its IPs alongside the single global offset BOP converged to —
 * showing that no global delta covers the per-IP patterns.
 */

#include "common.hh"
#include "core/berti.hh"
#include "harness/machine.hh"
#include "prefetch/bop.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    const Workload &w = findWorkload("mcf-like.1554");
    SimParams params = defaultParams();

    // Run Berti and BOP as two parallel jobs, keeping each machine
    // alive so its prefetcher tables can be dumped afterwards.
    std::unique_ptr<TraceGenerator> gens[2];
    std::unique_ptr<Machine> machines[2];
    const PrefetcherFactory factories[2] = {
        [] { return std::make_unique<BertiPrefetcher>(); },
        [] { return std::make_unique<BopPrefetcher>(); },
    };
    forEachIndexParallel(2, [&](std::size_t i) {
        gens[i] = w.make();
        MachineConfig cfg = MachineConfig::sunnyCove(1);
        cfg.l1dPrefetcher = factories[i];
        machines[i] = std::make_unique<Machine>(
            cfg, std::vector<TraceGenerator *>{gens[i].get()});
        machines[i]->run(params.warmupInstructions +
                         params.measureInstructions);
    });
    auto *berti_pf = dynamic_cast<BertiPrefetcher *>(
        machines[0]->l1d(0).prefetcher());
    auto *bop_pf =
        dynamic_cast<BopPrefetcher *>(machines[1]->l1d(0).prefetcher());

    std::cout << "Figure 3: Berti local deltas per IP vs BOP global "
                 "delta (" << w.name << ")\n\n";
    TextTable t({"IP", "selected local deltas (status L1/L2)"});
    // The mcf-like generator's delta-cycle IPs are sites 70..75.
    for (unsigned site = 70; site <= 75; ++site) {
        Addr ip = 0x400000 + 4 * site;
        std::string deltas;
        for (const auto &d : berti_pf->deltasFor(ip)) {
            if (d.status == BertiPrefetcher::DeltaStatus::NoPref)
                continue;
            deltas += (d.delta > 0 ? "+" : "") + std::to_string(d.delta);
            deltas += d.status == BertiPrefetcher::DeltaStatus::L1Pref
                          ? "(L1) " : "(L2) ";
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "0x%llx",
                      static_cast<unsigned long long>(ip));
        t.addRow({buf, deltas.empty() ? "-" : deltas});
    }
    t.print(std::cout);

    std::cout << "\nBOP global delta for the whole application: +"
              << bop_pf->bestOffset() << "\n";

    // Coverage comparison (paper: BOP covers ~2% of mcf accesses).
    auto grid = runSpecMatrix(
        {w}, {makeSpec("berti"), makeSpec("bop"), makeSpec("none")},
        params, "fig03 coverage");
    const SimResult &rb = grid[0][0];
    const SimResult &rg = grid[1][0];
    const SimResult &rn = grid[2][0];
    auto coverage = [&](const SimResult &r) {
        double covered = static_cast<double>(rn.roi.l1d.demandMisses) -
                         static_cast<double>(r.roi.l1d.demandMisses);
        return covered / static_cast<double>(rn.roi.l1d.demandMisses);
    };
    std::cout << "\nL1D miss coverage: Berti "
              << TextTable::pct(coverage(rb)) << " vs BOP "
              << TextTable::pct(coverage(rg)) << "\n";
    return 0;
}
