/**
 * @file
 * Figure 17: multi-level prefetching combinations under constrained
 * DRAM bandwidth (6400 / 3200 / 1600 MTPS), speedup vs IP-stride at
 * the same transfer rate.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    std::cout << "Figure 17: multi-level prefetching under constrained "
                 "DRAM bandwidth\n\n";
    TextTable t({"configuration", "MTPS", "SPEC17", "GAP", "all"});
    for (unsigned mtps : {6400u, 3200u, 1600u}) {
        SimParams params = defaultParams();
        params.dramMtps = mtps;
        auto m = runMatrix(workloads,
                           {"ip-stride", "berti", "mlop+bingo",
                            "berti+spp-ppf"},
                           params);
        for (const char *name :
             {"berti", "mlop+bingo", "berti+spp-ppf"}) {
            t.addRow(
                {name, std::to_string(mtps),
                 TextTable::num(suiteSpeedup(workloads, m[name],
                                             m["ip-stride"], "spec")),
                 TextTable::num(suiteSpeedup(workloads, m[name],
                                             m["ip-stride"], "gap")),
                 TextTable::num(suiteSpeedup(workloads, m[name],
                                             m["ip-stride"], ""))});
        }
    }
    t.print(std::cout);
    return 0;
}
