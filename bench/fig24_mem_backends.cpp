/**
 * @file
 * Figure 24: Berti timeliness sensitivity across memory backends. The
 * same prefetcher specs run against every registered timing model
 * (DDR4, DDR5, LPDDR5, HBM — see mem/backend_registry.hh), showing how
 * Berti's speedup, accuracy and late-prefetch fraction track the
 * memory system's latency/bandwidth corner: local deltas are learned
 * from measured fill latencies, so a slower memory stretches the
 * timeliness window while a high-bandwidth stack shrinks it.
 *
 * --backends=a,b,... overrides the swept backend list (CI smoke runs
 * two cells); each backend's per-cell stats sidecars land in their own
 * BERTI_STATS_DIR subdirectory so identical spec x workload names
 * never collide across backends.
 */

#include "common.hh"

#include "mem/backend_registry.hh"

int
main(int argc, char **argv)
{
    using namespace berti;
    using namespace berti::bench;

    sim::SimOptions opt = sim::SimOptions::fromEnvAndArgs(argc, argv);

    // Default sweep: every registered model at its preset geometry.
    std::vector<std::string> backends;
    for (const std::string &model : mem::knownBackendModels())
        backends.push_back("dram:" + model);
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.compare(0, 11, "--backends=") == 0)
            backends = sim::splitTopLevel(arg.substr(11), ',');
    }

    const std::vector<std::string> spec_names = {"none", "ip-stride",
                                                 "berti"};

    std::cout << "Figure 24: Berti vs memory backend (timeliness "
                 "sensitivity across timing models)\n\n";

    auto workloads = specGapWorkloads();
    auto extra = extraTraceWorkloads(opt);
    workloads.insert(workloads.end(), extra.begin(), extra.end());

    TextTable t({"backend", "prefetcher", "speedup", "accuracy",
                 "late%", "read lat", "row hit%"});

    for (const std::string &backend : backends) {
        // Parse up front: a typo in --backends= should fail before any
        // simulation, with the SimError naming the offending spec.
        mem::ParsedBackend parsed = mem::parseBackendSpec(backend);

        SimParams params = defaultParams(opt);
        params.memBackend = backend;

        std::vector<PrefetcherSpec> specs;
        for (const auto &name : spec_names)
            specs.push_back(makeSpec(name, opt));

        auto grid = runSpecMatrix(workloads, specs, params,
                                  parsed.canonical, parsed.canonical);
        std::map<std::string, std::vector<SimResult>> m;
        for (std::size_t s = 0; s < specs.size(); ++s)
            m.emplace(spec_names[s], std::move(grid[s]));

        for (const auto &name : spec_names) {
            if (name == "none")
                continue;
            // Suite-aggregate DRAM behaviour under this prefetcher:
            // mean read latency and row-buffer locality, from the new
            // dram.read_latency_* / row-hit counters.
            double lat_sum = 0, lat_n = 0, hits = 0, acts = 0;
            for (const SimResult &r : m[name]) {
                lat_sum += static_cast<double>(r.roi.dram.readLatencySum);
                lat_n += static_cast<double>(r.roi.dram.readLatencyCount);
                hits += static_cast<double>(r.roi.dram.rowHits);
                acts += static_cast<double>(r.roi.dram.rowHits +
                                            r.roi.dram.rowMisses +
                                            r.roi.dram.rowConflicts);
            }
            t.addRow({parsed.canonical, name,
                      TextTable::num(suiteSpeedup(workloads, m[name],
                                                  m["none"], "")),
                      TextTable::num(suiteAccuracy(workloads, m[name], "")),
                      TextTable::num(100.0 * suiteLateFraction(
                                                 workloads, m[name], "")),
                      TextTable::num(lat_n > 0 ? lat_sum / lat_n : 0.0),
                      TextTable::num(acts > 0 ? 100.0 * hits / acts
                                              : 0.0)});
        }
    }
    t.print(std::cout);
    return 0;
}
