/**
 * @file
 * Figure 16: L1D prefetcher speedups (vs IP-stride at the same DRAM
 * speed) under constrained DRAM bandwidth: DDR5-6400, DDR4-3200 and
 * DDR3-1600 transfer rates.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    std::cout << "Figure 16: L1D prefetchers under constrained DRAM "
                 "bandwidth (speedup vs IP-stride at same MTPS)\n\n";
    TextTable t({"prefetcher", "MTPS", "SPEC17", "GAP", "all"});
    for (unsigned mtps : {6400u, 3200u, 1600u}) {
        SimParams params = defaultParams();
        params.dramMtps = mtps;
        auto m = runMatrix(workloads,
                           {"ip-stride", "mlop", "ipcp", "berti"},
                           params);
        for (const char *name : {"mlop", "ipcp", "berti"}) {
            t.addRow(
                {name, std::to_string(mtps),
                 TextTable::num(suiteSpeedup(workloads, m[name],
                                             m["ip-stride"], "spec")),
                 TextTable::num(suiteSpeedup(workloads, m[name],
                                             m["ip-stride"], "gap")),
                 TextTable::num(suiteSpeedup(workloads, m[name],
                                             m["ip-stride"], ""))});
        }
    }
    t.print(std::cout);
    return 0;
}
