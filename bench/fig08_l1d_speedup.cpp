/**
 * @file
 * Figure 8: per-suite geometric-mean speedup of the L1D prefetchers
 * (MLOP, IPCP, Berti) over the IP-stride baseline.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    auto m = runMatrix(workloads, {"ip-stride", "mlop", "ipcp", "berti"},
                       params);

    std::cout << "Figure 8: speedup of L1D prefetchers vs IP-stride\n\n";
    TextTable t({"prefetcher", "SPEC17", "GAP", "all"});
    for (const char *name : {"mlop", "ipcp", "berti"}) {
        t.addRow({name,
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], "spec")),
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], "gap")),
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], ""))});
    }
    t.print(std::cout);
    return 0;
}
