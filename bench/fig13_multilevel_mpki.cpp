/**
 * @file
 * Figure 13: L2 and LLC demand MPKI for multi-level prefetching
 * combinations (with the L1D-only variants for reference).
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    const std::vector<std::string> specs = {
        "mlop", "berti", "ipcp",       "mlop+bingo", "mlop+spp-ppf",
        "berti+bingo", "berti+spp-ppf", "ipcp+ipcp",
    };
    auto m = runMatrix(workloads, specs, params);

    std::cout << "Figure 13: demand MPKI with multi-level "
                 "prefetching\n\n";
    TextTable t({"configuration", "suite", "L2-MPKI", "LLC-MPKI"});
    for (const auto &name : specs) {
        for (const char *suite : {"spec", "gap"}) {
            t.addRow(
                {name, suite,
                 TextTable::num(
                     suiteMean(workloads, m[name], suite,
                               [](const SimResult &s) {
                                   return s.roi.l2.mpki(
                                       s.roi.core.instructions);
                               }),
                     1),
                 TextTable::num(
                     suiteMean(workloads, m[name], suite,
                               [](const SimResult &s) {
                                   return s.roi.llc.mpki(
                                       s.roi.core.instructions);
                               }),
                     1)});
        }
    }
    t.print(std::cout);
    return 0;
}
