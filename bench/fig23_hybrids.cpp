/**
 * @file
 * Figure 23: hybrid prefetcher composition — the fig19-class suite
 * comparison regenerated with hybrid(...) specs next to their static
 * children. Shows what each selection policy buys: union forwarding
 * under the budget governor, the per-IP credit selector, and
 * set-dueling (which should match or beat its best static child).
 *
 * Extra `file:` traces from BERTI_TRACE_WORKLOADS / --trace-workloads
 * ride along as a third suite column when present.
 */

#include "common.hh"

int
main(int argc, char **argv)
{
    using namespace berti;
    using namespace berti::bench;

    sim::SimOptions opt = sim::SimOptions::fromEnvAndArgs(argc, argv);
    SimParams params = defaultParams(opt);

    const std::vector<std::string> specs = {
        "none",
        "berti",
        "cmc",
        "markov",
        "hybrid(berti,cmc)",
        "hybrid(berti,cmc;select=ip)",
        "hybrid(berti,cmc;select=duel)",
        "hybrid(berti,markov;select=ip)",
        "hybrid(berti,markov;select=duel)",
    };

    std::cout << "Figure 23: hybrid composition vs static children "
                 "(speedup vs no prefetching)\n\n";

    auto cloud = suiteWorkloads("cloud");
    auto specgap = specGapWorkloads();
    auto extra = extraTraceWorkloads(opt);

    auto mc = runMatrix(cloud, specs, params);
    auto ms = runMatrix(specgap, specs, params);
    std::map<std::string, std::vector<SimResult>> mx;
    if (!extra.empty())
        mx = runMatrix(extra, specs, params);

    std::vector<std::string> header = {"configuration", "cloud",
                                       "spec+gap"};
    if (!extra.empty())
        header.push_back("file traces");
    header.push_back("KB");
    TextTable t(header);

    for (const auto &name : specs) {
        if (name == "none")
            continue;
        std::vector<std::string> row = {
            name,
            TextTable::num(
                suiteSpeedup(cloud, mc[name], mc["none"], "cloud")),
            TextTable::num(
                suiteSpeedup(specgap, ms[name], ms["none"], ""))};
        if (!extra.empty()) {
            row.push_back(TextTable::num(
                suiteSpeedup(extra, mx[name], mx["none"], "")));
        }
        row.push_back(TextTable::num(storageKb(name)));
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
