/**
 * @file
 * Figure 7: geometric-mean speedup over the IP-stride baseline versus
 * prefetcher storage, across memory-intensive SPEC CPU2017-like and
 * GAP workloads, for single-level (L1D or L2) and multi-level
 * combinations.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    const std::vector<std::string> specs = {
        "ip-stride",   "mlop",        "ipcp",         "berti",
        "none+spp-ppf", "none+bingo", "mlop+bingo",   "mlop+spp-ppf",
        "berti+bingo", "berti+spp-ppf", "ipcp+ipcp",
    };
    auto m = runMatrix(workloads, specs, params);

    std::cout << "Figure 7: speedup vs storage (baseline: L1D "
                 "IP-stride)\n\n";
    TextTable t({"configuration", "kind", "storage-KB",
                 "speedup-spec+gap"});
    auto kind = [](const std::string &name) {
        if (name.find('+') == std::string::npos)
            return "L1D";
        if (name.rfind("none+", 0) == 0)
            return "L2";
        return "L1D+L2";
    };
    for (const auto &name : specs) {
        double s =
            suiteSpeedup(workloads, m[name], m["ip-stride"], "");
        t.addRow({name, kind(name), TextTable::num(storageKb(name), 2),
                  TextTable::num(s)});
    }
    t.print(std::cout);
    return 0;
}
