/**
 * @file
 * Figure 1: prefetch accuracy and dynamic memory-hierarchy energy of
 * state-of-the-art prefetchers (IPCP, MLOP, SPP-PPF at L2, Bingo at L2)
 * versus Berti, averaged over the memory-intensive SPEC CPU2017-like
 * and GAP suites. Energy is normalised to no prefetching.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    auto m = runMatrix(workloads,
                       {"none", "mlop", "ipcp", "none+spp-ppf",
                        "none+bingo", "berti"},
                       params);

    std::cout << "Figure 1(a): prefetch accuracy (useful / prefetch "
                 "fills)\n";
    TextTable acc({"prefetcher", "level", "SPEC17-accuracy",
                   "GAP-accuracy"});
    struct Row
    {
        const char *spec;
        const char *label;
        const char *level;
        bool l2;
    };
    const Row rows[] = {
        {"mlop", "MLOP", "L1D", false},
        {"ipcp", "IPCP", "L1D", false},
        {"none+spp-ppf", "SPP-PPF", "L2", true},
        {"none+bingo", "Bingo", "L2", true},
        {"berti", "Berti", "L1D", false},
    };
    for (const Row &r : rows) {
        acc.addRow({r.label, r.level,
                    TextTable::pct(suiteAccuracy(workloads, m[r.spec],
                                                 "spec", r.l2)),
                    TextTable::pct(suiteAccuracy(workloads, m[r.spec],
                                                 "gap", r.l2))});
    }
    acc.print(std::cout);

    std::cout << "\nFigure 1(b): dynamic energy normalised to no "
                 "prefetching\n";
    TextTable en({"prefetcher", "SPEC17-energy", "GAP-energy"});
    for (const Row &r : rows) {
        auto norm = [&](const std::string &suite) {
            double base = suiteMean(workloads, m["none"], suite,
                                    [](const SimResult &s) {
                                        return s.energy.total() /
                                               s.roi.core.instructions;
                                    });
            double val = suiteMean(workloads, m[r.spec], suite,
                                   [](const SimResult &s) {
                                       return s.energy.total() /
                                              s.roi.core.instructions;
                                   });
            return base > 0 ? val / base : 0.0;
        };
        en.addRow({r.label, TextTable::num(norm("spec")),
                   TextTable::num(norm("gap"))});
    }
    en.print(std::cout);
    return 0;
}
