/**
 * @file
 * Section IV-J ablation: cross-page prefetching. Berti trains and
 * issues on virtual addresses, so prefetches may cross 4 KB pages (as
 * long as the STLB can translate them); this bench disables issuing
 * across pages (training unchanged) and reports the loss.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();

    std::vector<PrefetcherSpec> specs = {makeSpec("ip-stride")};
    for (bool cross : {true, false}) {
        BertiConfig cfg;
        cfg.crossPage = cross;
        specs.push_back(
            makeBertiSpec(cfg, cross ? "berti" : "berti-nocross"));
    }
    auto grid = runSpecMatrix(workloads, specs, params, "abl_cross_page");
    const auto &base = grid[0];

    std::cout << "Ablation (section IV-J): cross-page prefetching\n\n";
    TextTable t({"configuration", "SPEC17", "GAP", "all"});
    for (std::size_t v = 0; v < 2; ++v) {
        const auto &r = grid[v + 1];
        t.addRow({v == 0 ? "cross-page (default)" : "page-bounded",
                  TextTable::num(
                      suiteSpeedup(workloads, r, base, "spec")),
                  TextTable::num(suiteSpeedup(workloads, r, base, "gap")),
                  TextTable::num(suiteSpeedup(workloads, r, base, ""))});
    }
    t.print(std::cout);
    return 0;
}
