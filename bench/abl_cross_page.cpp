/**
 * @file
 * Section IV-J ablation: cross-page prefetching. Berti trains and
 * issues on virtual addresses, so prefetches may cross 4 KB pages (as
 * long as the STLB can translate them); this bench disables issuing
 * across pages (training unchanged) and reports the loss.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    auto base = runSuite(workloads, makeSpec("ip-stride"), params);

    std::cout << "Ablation (section IV-J): cross-page prefetching\n\n";
    TextTable t({"configuration", "SPEC17", "GAP", "all"});
    for (bool cross : {true, false}) {
        BertiConfig cfg;
        cfg.crossPage = cross;
        auto r = runSuite(
            workloads,
            makeBertiSpec(cfg, cross ? "berti" : "berti-nocross"),
            params);
        t.addRow({cross ? "cross-page (default)" : "page-bounded",
                  TextTable::num(
                      suiteSpeedup(workloads, r, base, "spec")),
                  TextTable::num(suiteSpeedup(workloads, r, base, "gap")),
                  TextTable::num(suiteSpeedup(workloads, r, base, ""))});
        std::fprintf(stderr, ".");
    }
    std::fprintf(stderr, "\n");
    t.print(std::cout);
    return 0;
}
