/**
 * @file
 * Section V qualitative comparisons, quantified: the related-work
 * prefetchers the paper discusses but does not plot — stream, SMS,
 * VLDP, MISB and Pythia — against Berti, on the SPEC+GAP pool.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    const std::vector<std::string> specs = {
        "ip-stride", "stream",      "none+sms",   "none+vldp",
        "none+misb", "none+pythia", "berti",
    };
    auto m = runMatrix(workloads, specs, params);

    std::cout << "Related work (section V): speedup vs IP-stride and "
                 "L1D accuracy\n\n";
    TextTable t({"configuration", "speedup-spec", "speedup-gap",
                 "speedup-all", "storage-KB"});
    for (const auto &name : specs) {
        if (name == "ip-stride")
            continue;
        t.addRow({name,
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], "spec")),
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], "gap")),
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], "")),
                  TextTable::num(storageKb(name), 2)});
    }
    t.print(std::cout);
    return 0;
}
