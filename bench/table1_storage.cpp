/**
 * @file
 * Table I: storage overhead of Berti, broken down per structure, plus
 * the storage budget of every evaluated prefetcher (Table III's sizes /
 * Figure 7's x axis).
 */

#include "common.hh"
#include "core/berti.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    BertiConfig cfg;
    std::cout << "Table I: storage overhead of Berti\n\n";
    TextTable t({"structure", "organisation", "storage"});

    auto kb = [](std::uint64_t bits) {
        return TextTable::num(static_cast<double>(bits) / 8.0 / 1024.0,
                              2) + " KB";
    };

    std::uint64_t history_bits =
        static_cast<std::uint64_t>(cfg.historySets) * cfg.historyWays *
            (7 + 24 + 16) + cfg.historySets * 4;
    std::uint64_t table_bits =
        static_cast<std::uint64_t>(cfg.deltaTableEntries) *
        (10 + 4 + 4 + static_cast<std::uint64_t>(cfg.deltasPerEntry) *
                          (13 + 4 + 2));
    std::uint64_t queue_bits = (16 + 16) * 16;
    std::uint64_t line_bits = 768ull * cfg.latencyBits;

    t.addRow({"History table",
              "8-set, 16-way (128-entry), FIFO; 7b tag + 24b line + "
              "16b timestamp",
              kb(history_bits)});
    t.addRow({"Table of deltas",
              "16-entry fully-assoc, FIFO; 10b tag + 4b counter + 16 x "
              "(13b delta, 4b coverage, 2b status)",
              kb(table_bits)});
    t.addRow({"PQ + MSHR", "16+16 entries, 16b timestamp each",
              kb(queue_bits)});
    t.addRow({"L1D", "768 lines, 12b latency per line", kb(line_bits)});
    t.addRow({"Total", "",
              kb(history_bits + table_bits + queue_bits + line_bits)});
    t.print(std::cout);

    std::cout << "\nStorage of every evaluated prefetcher "
                 "configuration:\n";
    TextTable s({"configuration", "storage (KB)"});
    for (const char *name :
         {"ip-stride", "bop", "mlop", "ipcp", "berti", "none+spp-ppf",
          "none+bingo", "none+vldp", "none+misb", "mlop+bingo",
          "mlop+spp-ppf", "berti+bingo", "berti+spp-ppf", "ipcp+ipcp"}) {
        s.addRow({name, TextTable::num(storageKb(name), 2)});
    }
    s.print(std::cout);
    return 0;
}
