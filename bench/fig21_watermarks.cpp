/**
 * @file
 * Figure 21: sensitivity to the L1 and L2 coverage watermarks. Sweeps
 * the (L1, L2) watermark grid on a representative workload subset and
 * prints normalised speedup (vs the IP-stride baseline) per cell; the
 * paper's chosen point is (65%, 35%).
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    const char *subset[] = {"stream-like.1", "lbm-like.2676",
                            "mcf-like.1554", "bwaves-like.1740",
                            "pr-urand", "cc-kron"};
    std::vector<Workload> workloads;
    for (const char *n : subset)
        workloads.push_back(findWorkload(n));

    SimParams params = defaultParams();

    const double l1_wms[] = {0.35, 0.50, 0.65, 0.80, 0.95};
    const double l2_wms[] = {0.20, 0.35, 0.50};

    std::vector<PrefetcherSpec> specs = {makeSpec("ip-stride")};
    for (double l1 : l1_wms) {
        for (double l2 : l2_wms) {
            BertiConfig cfg;
            cfg.l1Watermark = l1;
            cfg.l2Watermark = std::min(l2, l1);
            specs.push_back(makeBertiSpec(cfg));
        }
    }
    auto grid = runSpecMatrix(workloads, specs, params, "fig21");
    const auto &base = grid[0];

    std::cout << "Figure 21: speedup vs IP-stride for L1/L2 coverage "
                 "watermarks (paper's choice: L1=65%, L2=35%)\n\n";
    TextTable t({"L1-watermark", "L2=20%", "L2=35%", "L2=50%"});
    std::size_t cell = 1;
    for (double l1 : l1_wms) {
        std::vector<std::string> row = {TextTable::pct(l1, 0)};
        for (std::size_t l2 = 0; l2 < std::size(l2_wms); ++l2)
            row.push_back(TextTable::num(speedupGeomean(grid[cell++], base)));
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
