/**
 * @file
 * Figure 10: L1D prefetch accuracy, split into timely and late useful
 * prefetches, per suite.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    auto m = runMatrix(workloads, {"mlop", "ipcp", "berti"}, params);

    std::cout << "Figure 10: prefetch accuracy at the L1D (useful = "
                 "timely + late)\n\n";
    TextTable t({"prefetcher", "suite", "accuracy", "timely", "late"});
    for (const char *name : {"mlop", "ipcp", "berti"}) {
        for (const char *suite : {"spec", "gap"}) {
            double acc = suiteAccuracy(workloads, m[name], suite);
            double late_frac =
                suiteLateFraction(workloads, m[name], suite);
            t.addRow({name, suite, TextTable::pct(acc),
                      TextTable::pct(acc - late_frac),
                      TextTable::pct(late_frac)});
        }
    }
    t.print(std::cout);
    return 0;
}
