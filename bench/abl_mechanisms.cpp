/**
 * @file
 * Mechanism ablation: the paper credits Berti's accuracy to (i) local
 * per-IP deltas that are *timely* and (ii) the high-confidence coverage
 * watermarks. This bench disables each pillar in turn:
 *   - "no-timeliness": every older same-IP access contributes deltas,
 *     regardless of the measured fetch latency;
 *   - "no-selectivity": every gathered delta is issued (MLOP-style),
 *     ignoring the coverage watermarks.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();

    std::cout << "Mechanism ablation: Berti without each of its "
                 "pillars (speedup vs IP-stride / L1D accuracy)\n\n";

    struct Variant
    {
        const char *label;
        BertiConfig cfg;
    };
    BertiConfig no_timely;
    no_timely.requireTimely = false;
    BertiConfig no_select;
    no_select.issueAllDeltas = true;
    const Variant variants[] = {
        {"berti (full)", BertiConfig{}},
        {"no-timeliness", no_timely},
        {"no-selectivity", no_select},
    };

    std::vector<PrefetcherSpec> specs = {makeSpec("ip-stride")};
    for (const Variant &v : variants)
        specs.push_back(makeBertiSpec(v.cfg, v.label));
    auto grid = runSpecMatrix(workloads, specs, params, "abl_mechanisms");
    const auto &base = grid[0];

    TextTable t({"variant", "speedup-spec", "speedup-gap", "speedup-all",
                 "accuracy-spec", "accuracy-gap"});
    for (std::size_t v = 0; v < std::size(variants); ++v) {
        const auto &r = grid[v + 1];
        t.addRow({variants[v].label,
                  TextTable::num(suiteSpeedup(workloads, r, base,
                                              "spec")),
                  TextTable::num(suiteSpeedup(workloads, r, base, "gap")),
                  TextTable::num(suiteSpeedup(workloads, r, base, "")),
                  TextTable::pct(suiteAccuracy(workloads, r, "spec")),
                  TextTable::pct(suiteAccuracy(workloads, r, "gap"))});
    }
    t.print(std::cout);
    return 0;
}
