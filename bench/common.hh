/**
 * @file
 * Shared plumbing for the bench binaries: default simulation lengths,
 * suite shortcuts, result matrices and normalisation helpers. Each
 * bench regenerates one table or figure of the paper.
 */

#ifndef BERTI_BENCH_COMMON_HH
#define BERTI_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/table.hh"
#include "obs/export.hh"
#include "sim/options.hh"
#include "sim/spec_parse.hh"

namespace berti::bench
{

/** File-name-safe form of a workload/spec label. */
inline std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                  c == '_';
        out.push_back(ok ? c : '-');
    }
    return out.empty() ? std::string("unnamed") : out;
}

/**
 * When BERTI_STATS_DIR is set, write one machine-diffable JSON sidecar
 * per (spec, workload) cell — <dir>/<spec>__<workload>.json in the
 * stable resultSnapshot() schema. Colliding sanitized names get a
 * numeric suffix so no cell silently overwrites another. Called by
 * runSpecMatrix after the pool joins, so results arrive in input order
 * and the sidecar set is identical for every BERTI_JOBS value. A
 * non-empty subdir nests the sidecars one level down (fig24 keeps one
 * subdirectory per memory backend so identical spec x workload cells
 * from different backends never collide).
 */
inline void
writeStatsSidecars(const std::vector<Workload> &workloads,
                   const std::vector<PrefetcherSpec> &specs,
                   const std::vector<std::vector<SimResult>> &grid,
                   const std::string &subdir = "")
{
    std::string dir = sim::SimOptions::fromEnv().statsDir;
    if (dir.empty())
        return;
    if (!subdir.empty())
        dir += "/" + sanitizeLabel(subdir);
    // A bench killed mid-write leaves a *.json.tmp staging file behind
    // (writeFile renames only on success); sweep them before writing so
    // the sidecar directory holds nothing but complete documents.
    std::size_t stale = obs::removeStaleTempFiles(dir);
    if (stale > 0) {
        std::cerr << "stats: removed " << stale
                  << " stale .tmp file(s) from " << dir << "\n";
    }
    std::map<std::string, unsigned> used;
    for (std::size_t s = 0; s < specs.size(); ++s) {
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            std::string stem = sanitizeLabel(specs[s].name) + "__" +
                               sanitizeLabel(workloads[w].name);
            unsigned n = used[stem]++;
            if (n > 0)
                stem += "." + std::to_string(n);
            obs::writeFile(dir + "/" + stem + ".json",
                           obs::toJson(resultSnapshot(grid[s][w])));
        }
    }
}

/**
 * File-backed workloads requested via BERTI_TRACE_WORKLOADS (or
 * --trace-workloads=): a comma-separated list of `file:` URIs or bare
 * trace paths. Benches append these to their workload lists so real
 * ChampSim traces ride along with the synthetic suites. Bare paths get
 * the `file:` prefix here; resolution errors are typed SimErrors from
 * resolveWorkload and abort the bench loudly.
 */
inline std::vector<Workload>
extraTraceWorkloads(const sim::SimOptions &opt = sim::SimOptions::fromEnv())
{
    std::vector<Workload> out;
    for (std::string name : sim::splitTopLevel(opt.traceWorkloads, ',')) {
        if (name.compare(0, 5, "file:") != 0)
            name = "file:" + name;
        out.push_back(resolveWorkload(name));
    }
    return out;
}

/** Default region-of-interest sizes for bench runs. Set
 *  BERTI_BENCH_QUICK=1 (or pass --quick) for a fast smoke pass, and
 *  BERTI_SAMPLE_WINDOWS=N (or --sample-windows=N) to replace the long
 *  measurement region with N sampled windows — every bench then
 *  regenerates its figure from windowed samples at a fraction of the
 *  simulated instructions, stored under distinct result-store keys. */
inline SimParams
defaultParams(const sim::SimOptions &opt = sim::SimOptions::fromEnv())
{
    SimParams p;
    p.warmupInstructions = 40000;
    p.measureInstructions = 200000;
    if (opt.benchQuick) {
        p.warmupInstructions = 10000;
        p.measureInstructions = 40000;
    }
    if (opt.sampleWindows > 0) {
        p.sampling.windowCount = opt.sampleWindows;
        p.sampling.windowWarmup = opt.sampleWarmup;
        p.sampling.windowMeasure = opt.sampleMeasure;
        p.sampling.windowStride = opt.sampleStride;
        // Sampling exists to cut simulated instructions; the global
        // warmup shrinks with it (windows re-warm locally).
        p.warmupInstructions = opt.benchQuick ? 4000 : 8000;
    }
    // BERTI_MEM_BACKEND / --mem-backend= flows into every bench cell;
    // paramsFingerprint keys non-default backends separately.
    p.memBackend = opt.memBackend;
    return p;
}

/**
 * Run every (spec, workload) cell through the parallel worker pool
 * (BERTI_JOBS / hardware_concurrency), with thread-safe progress on
 * stderr. out[s][w] corresponds to specs[s] on workloads[w]; ordering
 * matches the inputs regardless of thread count.
 */
inline std::vector<std::vector<SimResult>>
runSpecMatrix(const std::vector<Workload> &workloads,
              const std::vector<PrefetcherSpec> &specs,
              const SimParams &params, const std::string &label = "matrix",
              const std::string &sidecarSubdir = "")
{
    auto grid = runMatrixParallel(workloads, specs, params, /*jobs=*/0,
                                  stderrProgress(label));
    writeStatsSidecars(workloads, specs, grid, sidecarSubdir);
    return grid;
}

/** spec-name -> per-workload results, scheduled on the parallel pool. */
inline std::map<std::string, std::vector<SimResult>>
runMatrix(const std::vector<Workload> &workloads,
          const std::vector<std::string> &spec_names,
          const SimParams &params)
{
    // Options-aware: hybrid specs pick up BERTI_HYBRID_* geometry and
    // canonicalize their recorded names.
    const sim::SimOptions opt = sim::SimOptions::fromEnv();
    std::vector<PrefetcherSpec> specs;
    specs.reserve(spec_names.size());
    for (const auto &name : spec_names)
        specs.push_back(makeSpec(name, opt));

    auto grid = runSpecMatrix(workloads, specs, params,
                              std::to_string(spec_names.size()) +
                                  " specs x " +
                                  std::to_string(workloads.size()) +
                                  " workloads");
    std::map<std::string, std::vector<SimResult>> out;
    for (std::size_t s = 0; s < specs.size(); ++s)
        out.emplace(spec_names[s], std::move(grid[s]));
    return out;
}

/** Geomean speedup of a sub-range selected by suite. */
inline double
suiteSpeedup(const std::vector<Workload> &workloads,
             const std::vector<SimResult> &test,
             const std::vector<SimResult> &baseline,
             const std::string &suite)
{
    std::vector<double> s;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (suite.empty() || workloads[i].suite == suite) {
            if (baseline[i].ipc > 0)
                s.push_back(test[i].ipc / baseline[i].ipc);
        }
    }
    return geomean(s.data(), s.size());
}

/** Arithmetic mean of a per-workload metric over a suite. */
template <typename Fn>
double
suiteMean(const std::vector<Workload> &workloads,
          const std::vector<SimResult> &results, const std::string &suite,
          Fn metric)
{
    double sum = 0.0;
    unsigned n = 0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (suite.empty() || workloads[i].suite == suite) {
            sum += metric(results[i]);
            ++n;
        }
    }
    return n ? sum / n : 0.0;
}

/**
 * Fills-weighted suite prefetch accuracy: total useful / total fills
 * at the given level (so workloads whose prefetches all landed one
 * level down do not contribute spurious zeros).
 */
inline double
suiteAccuracy(const std::vector<Workload> &workloads,
              const std::vector<SimResult> &results,
              const std::string &suite, bool l2 = false)
{
    double useful = 0, fills = 0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (!suite.empty() && workloads[i].suite != suite)
            continue;
        const CacheStats &c =
            l2 ? results[i].roi.l2 : results[i].roi.l1d;
        useful += static_cast<double>(c.prefetchUseful);
        fills += static_cast<double>(c.prefetchFills);
    }
    return fills > 0 ? std::min(1.0, useful / fills) : 0.0;
}

/** Fills-weighted fraction of late useful prefetches at the L1D. */
inline double
suiteLateFraction(const std::vector<Workload> &workloads,
                  const std::vector<SimResult> &results,
                  const std::string &suite)
{
    double late = 0, fills = 0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        if (!suite.empty() && workloads[i].suite != suite)
            continue;
        late += static_cast<double>(results[i].roi.l1d.prefetchLate);
        fills += static_cast<double>(results[i].roi.l1d.prefetchFills);
    }
    return fills > 0 ? late / fills : 0.0;
}

/** Sum of traffic (reads forwarded + writebacks) out of a level. */
inline double
trafficBelow(const CacheStats &c)
{
    return static_cast<double>(c.requestsBelow + c.writebacks);
}

inline double
storageKb(const std::string &spec_name)
{
    return static_cast<double>(makeSpec(spec_name).storageBits) / 8192.0;
}

} // namespace berti::bench

#endif // BERTI_BENCH_COMMON_HH
