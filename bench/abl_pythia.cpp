/**
 * @file
 * Section V claim check: "Berti is an L1D prefetcher in contrast to
 * Pythia, and with Berti at the L1D, we find negligible performance
 * improvement with Pythia (less than 1%)". Runs Berti alone, Pythia
 * (at L2) alone, and Berti+Pythia, and reports the marginal gain of
 * adding Pythia on top of Berti.
 */

#include "common.hh"

int
main()
{
    using namespace berti;
    using namespace berti::bench;

    auto workloads = specGapWorkloads();
    SimParams params = defaultParams();
    auto m = runMatrix(workloads,
                       {"ip-stride", "none+pythia", "berti",
                        "berti+pythia"},
                       params);

    std::cout << "Related-work check (section V): Pythia on top of "
                 "Berti\n\n";
    TextTable t({"configuration", "SPEC17", "GAP", "all"});
    for (const char *name :
         {"none+pythia", "berti", "berti+pythia"}) {
        t.addRow({name,
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], "spec")),
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], "gap")),
                  TextTable::num(suiteSpeedup(workloads, m[name],
                                              m["ip-stride"], ""))});
    }
    t.print(std::cout);

    double marginal =
        suiteSpeedup(workloads, m["berti+pythia"], m["berti"], "");
    std::cout << "\nMarginal gain of Pythia on top of Berti: "
              << TextTable::pct(marginal - 1.0)
              << " (paper: less than 1%)\n";
    return 0;
}
