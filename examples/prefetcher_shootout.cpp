/**
 * @file
 * CLI example: race any set of prefetcher configurations on any
 * registered workload and print the full scorecard (IPC, MPKI at all
 * levels, accuracy, timeliness, traffic, energy).
 *
 * Usage: prefetcher_shootout [workload] [spec ...]
 *   e.g. prefetcher_shootout mcf-like.1554 ip-stride mlop ipcp berti
 *        prefetcher_shootout bfs-kron berti berti+spp-ppf mlop+bingo
 *
 * Run with no arguments for a default configuration; pass "list" to
 * enumerate workloads.
 */

#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/table.hh"

int
main(int argc, char **argv)
{
    using namespace berti;

    if (argc > 1 && std::string(argv[1]) == "list") {
        for (const auto &w : allWorkloads())
            std::cout << w.suite << "\t" << w.name << "\n";
        return 0;
    }

    std::string workload_name = argc > 1 ? argv[1] : "mcf-like.1554";
    std::vector<std::string> spec_names;
    for (int i = 2; i < argc; ++i)
        spec_names.push_back(argv[i]);
    if (spec_names.empty())
        spec_names = {"none", "ip-stride", "mlop", "ipcp", "berti"};

    const Workload &w = findWorkload(workload_name);
    SimParams params;
    params.warmupInstructions = 40000;
    params.measureInstructions = 200000;

    std::cout << "workload: " << w.name << " (suite " << w.suite
              << ")\n\n";
    TextTable t({"prefetcher", "IPC", "L1D-MPKI", "L2-MPKI", "LLC-MPKI",
                 "accuracy", "timely", "DRAM-reads/KI", "energy-nJ/KI",
                 "storage-KB"});
    for (const auto &name : spec_names) {
        PrefetcherSpec spec = makeSpec(name);
        SimResult r = simulate(w, spec, params);
        double ki =
            static_cast<double>(r.roi.core.instructions) / 1000.0;
        double timely = r.roi.l1d.prefetchFills
            ? static_cast<double>(r.roi.l1d.prefetchTimely()) /
                  r.roi.l1d.prefetchFills
            : 0.0;
        t.addRow({name, TextTable::num(r.ipc),
                  TextTable::num(r.roi.l1d.mpki(r.roi.core.instructions),
                                 1),
                  TextTable::num(r.roi.l2.mpki(r.roi.core.instructions),
                                 1),
                  TextTable::num(r.roi.llc.mpki(r.roi.core.instructions),
                                 1),
                  TextTable::pct(r.roi.l1d.accuracy()),
                  TextTable::pct(timely),
                  TextTable::num(r.roi.dram.reads / ki, 1),
                  TextTable::num(r.energy.total() / ki, 1),
                  TextTable::num(
                      static_cast<double>(spec.storageBits) / 8192.0,
                      2)});
    }
    t.print(std::cout);
    return 0;
}
