/**
 * @file
 * Quickstart: simulate one workload on the paper's baseline system with
 * three prefetcher configurations (none, IP-stride, Berti) and print
 * IPC, MPKI and prefetch accuracy. Mirrors the minimal flow every bench
 * uses: pick a workload, pick a prefetcher spec, simulate, read stats.
 *
 * Usage: quickstart [workload-name]   (default: stream-like.1)
 */

#include <iostream>
#include <string>

#include "harness/experiment.hh"
#include "harness/table.hh"

int
main(int argc, char **argv)
{
    using namespace berti;

    std::string workload_name = argc > 1 ? argv[1] : "stream-like.1";
    const Workload &workload = findWorkload(workload_name);

    std::cout << "workload: " << workload.name << " (suite "
              << workload.suite << ")\n\n";

    TextTable table({"prefetcher", "IPC", "speedup", "L1D-MPKI",
                     "L2-MPKI", "LLC-MPKI", "pf-accuracy",
                     "storage-KB"});

    SimResult baseline;
    for (const std::string &name : {"none", "ip-stride", "berti"}) {
        PrefetcherSpec spec = makeSpec(name);
        SimResult r = simulate(workload, spec);
        if (name == "none")
            baseline = r;
        std::uint64_t instr = r.roi.core.instructions;
        table.addRow({
            spec.name,
            TextTable::num(r.ipc),
            TextTable::num(baseline.ipc > 0 ? r.ipc / baseline.ipc : 1.0),
            TextTable::num(r.roi.l1d.mpki(instr), 1),
            TextTable::num(r.roi.l2.mpki(instr), 1),
            TextTable::num(r.roi.llc.mpki(instr), 1),
            TextTable::pct(r.roi.l1d.accuracy()),
            TextTable::num(static_cast<double>(spec.storageBits) / 8192.0,
                           2),
        });
    }
    table.print(std::cout);
    return 0;
}
