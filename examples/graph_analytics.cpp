/**
 * @file
 * Domain example: graph analytics. Builds a custom power-law graph,
 * runs the GAP kernels over it on the simulated machine, and reports
 * how each prefetcher handles the kernels' mixed regular (CSR scans) +
 * irregular (property gathers) access behaviour.
 *
 * Usage: graph_analytics [nodes-log2] [avg-degree]
 */

#include <iostream>
#include <memory>
#include <string>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "trace/gap_kernels.hh"

int
main(int argc, char **argv)
{
    using namespace berti;

    unsigned log2_nodes = argc > 1 ? std::stoul(argv[1]) : 17;
    unsigned degree = argc > 2 ? std::stoul(argv[2]) : 8;

    std::cout << "Building a Kronecker-like power-law graph: 2^"
              << log2_nodes << " nodes, average degree " << degree
              << "...\n";
    auto graph = std::make_shared<const Csr>(
        makeKronGraph(1u << log2_nodes, degree, 0xD1CE));
    std::cout << "  " << graph->numNodes << " nodes, "
              << graph->numEdges() << " edges\n\n";

    struct KernelDef
    {
        const char *name;
        GapKernel kernel;
    };
    const KernelDef kernels[] = {
        {"bfs", GapKernel::Bfs},
        {"pagerank", GapKernel::PageRank},
        {"components", GapKernel::Cc},
        {"sssp", GapKernel::Sssp},
    };

    SimParams params;
    params.warmupInstructions = 30000;
    params.measureInstructions = 150000;

    TextTable t({"kernel", "prefetcher", "IPC", "speedup", "L1D-MPKI",
                 "pf-accuracy"});
    for (const auto &k : kernels) {
        double baseline_ipc = 0.0;
        for (const std::string pf_name :
             {"ip-stride", "ipcp", "berti"}) {
            // Wrap the kernel as an ad-hoc workload.
            Workload w;
            w.name = k.name;
            w.suite = "custom";
            GapKernel kern = k.kernel;
            w.make = [kern, graph] {
                return std::make_unique<GapGen>(kern, graph, 7);
            };
            SimResult r = simulate(w, makeSpec(pf_name), params);
            if (pf_name == "ip-stride")
                baseline_ipc = r.ipc;
            t.addRow({k.name, pf_name, TextTable::num(r.ipc),
                      TextTable::num(baseline_ipc > 0
                                         ? r.ipc / baseline_ipc : 1.0),
                      TextTable::num(
                          r.roi.l1d.mpki(r.roi.core.instructions), 1),
                      TextTable::pct(r.roi.l1d.accuracy())});
        }
    }
    t.print(std::cout);
    std::cout << "\nNote the paper's GAP finding: gains are modest and "
                 "accuracy separates the prefetchers — Berti stays "
                 "accurate on the irregular gathers.\n";
    return 0;
}
