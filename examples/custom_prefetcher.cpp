/**
 * @file
 * Extensibility example: writing your own prefetcher against the
 * library's Prefetcher interface and racing it against Berti. The
 * custom design here is a simple "two ahead on every miss" prefetcher
 * — a few lines of code — which makes the accuracy/timeliness gap to
 * Berti easy to see.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "prefetch/prefetcher.hh"

namespace
{

using namespace berti;

/** Prefetch the next two lines on every demand miss. */
class TwoAheadPrefetcher : public Prefetcher
{
  public:
    void
    onAccess(const AccessInfo &info) override
    {
        if (info.hit || info.vLine == kNoAddr)
            return;
        port->issuePrefetch(info.vLine + 1, FillLevel::L1);
        port->issuePrefetch(info.vLine + 2, FillLevel::L1);
    }

    std::uint64_t storageBits() const override { return 0; }
    std::string name() const override { return "two-ahead"; }
};

} // namespace

int
main()
{
    using namespace berti;

    // A PrefetcherSpec is just a name + factory: plug the custom
    // design in exactly like the built-in ones.
    PrefetcherSpec custom;
    custom.name = "two-ahead";
    custom.l1d = [] { return std::make_unique<TwoAheadPrefetcher>(); };

    SimParams params;
    params.warmupInstructions = 30000;
    params.measureInstructions = 150000;

    TextTable t({"workload", "prefetcher", "IPC", "accuracy",
                 "useless-prefetches"});
    for (const char *wname :
         {"stream-like.1", "mcf-like.1554", "omnetpp-like.874"}) {
        const Workload &w = findWorkload(wname);
        for (const PrefetcherSpec &spec :
             {custom, makeSpec("berti")}) {
            SimResult r = simulate(w, spec, params);
            t.addRow({wname, spec.name, TextTable::num(r.ipc),
                      TextTable::pct(r.roi.l1d.accuracy()),
                      std::to_string(r.roi.l1d.prefetchUseless)});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe naive design keeps up on sequential streams "
                 "but wastes fills on irregular workloads, where "
                 "Berti's coverage-gated deltas stay quiet.\n";
    return 0;
}
