/**
 * @file
 * Crash-safe sweep CLI over the supervised worker layer: runs a
 * (workload x spec) matrix with a content-addressed result store, so a
 * killed sweep resumes from its completed cells, deterministic
 * failures are retried with backoff and then quarantined, and the
 * final matrix is emitted as per-cell JSON sidecars byte-identical to
 * an uninterrupted run.
 *
 * Usage:
 *   sweep_tool [options]
 *     --workloads=a,b,c     workload names and/or file: trace URIs
 *                           (file:/path/foo.champsim[.xz|.gz] or
 *                           file:/path/foo.trace; default: a small trio)
 *     --specs=x,y           prefetcher specs (default: none,berti)
 *     --store=DIR           result store directory (enables resume)
 *     --out=DIR             write per-cell resultSnapshot JSON here
 *     --warmup=N --measure=N --dram-mtps=N
 *     --mem-backend=SPEC    memory backend (mem/backend_registry.hh
 *                           grammar, e.g. dram:ddr5 or
 *                           "dram:hbm;sched=fcfs"; default dram:ddr4)
 *     --sample-windows=N    sampled mode: N measurement windows (0=off)
 *     --sample-warmup=N     per-window warmup instructions
 *     --sample-measure=N    per-window measured instructions (> 0)
 *     --sample-stride=N     window start spacing (0 = back-to-back)
 *     --jobs=N              worker threads (0 = auto)
 *     --attempts=N          max attempts per cell (default 3)
 *     --deadline-ms=N       per-simulation wall-clock budget
 *     --backoff-ms=N        base retry backoff (default 10)
 *     --rerun-failed        retry cells quarantined by earlier sweeps
 *     --poison=SPEC/WORKLOAD  deterministically fail that cell (tests)
 *     --quick               tiny warmup/measure for smoke tests
 *
 * Exit status: 0 all cells ok, 2 when any cell is quarantined (the
 * rest of the matrix still completed and was stored), 1 on usage or
 * structural errors.
 */

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "harness/result_store.hh"
#include "harness/supervisor.hh"
#include "obs/export.hh"
#include "sim/options.hh"
#include "sim/spec_parse.hh"
#include "trace/registry.hh"
#include "verify/sim_error.hh"

namespace
{

using namespace berti;

/** Split on commas at paren depth 0, so composed specs like
 *  "hybrid(berti,cmc)" stay one list element. */
std::vector<std::string>
splitList(const std::string &csv)
{
    return sim::splitTopLevel(csv, ',');
}

struct Options
{
    std::vector<std::string> workloads = {"mcf-like.472",
                                          "bwaves-like.2609",
                                          "cactu-like.709"};
    std::vector<std::string> specs = {"none", "berti"};
    std::string storeDir;
    std::string outDir;
    SimParams params;
    unsigned jobs = 0;
    unsigned attempts = 3;
    std::uint64_t backoffMs = 10;
    bool rerunFailed = false;
    std::string poisonSpec;
    std::string poisonWorkload;
};

bool
parseArgs(int argc, char **argv, Options &opt)
{
    auto valueOf = [](const std::string &arg, const std::string &flag,
                      std::string &out) {
        if (arg.compare(0, flag.size(), flag) != 0)
            return false;
        out = arg.substr(flag.size());
        return true;
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string v;
        if (valueOf(arg, "--workloads=", v)) {
            opt.workloads = splitList(v);
        } else if (valueOf(arg, "--specs=", v)) {
            opt.specs = splitList(v);
        } else if (valueOf(arg, "--store=", v)) {
            opt.storeDir = v;
        } else if (valueOf(arg, "--out=", v)) {
            opt.outDir = v;
        } else if (valueOf(arg, "--warmup=", v)) {
            opt.params.warmupInstructions = std::stoull(v);
        } else if (valueOf(arg, "--measure=", v)) {
            opt.params.measureInstructions = std::stoull(v);
        } else if (valueOf(arg, "--dram-mtps=", v)) {
            opt.params.dramMtps = static_cast<unsigned>(std::stoul(v));
        } else if (valueOf(arg, "--mem-backend=", v)) {
            opt.params.memBackend = v;
        } else if (valueOf(arg, "--sample-windows=", v)) {
            opt.params.sampling.windowCount =
                static_cast<unsigned>(std::stoul(v));
        } else if (valueOf(arg, "--sample-warmup=", v)) {
            opt.params.sampling.windowWarmup = std::stoull(v);
        } else if (valueOf(arg, "--sample-measure=", v)) {
            opt.params.sampling.windowMeasure = std::stoull(v);
            if (opt.params.sampling.windowMeasure == 0) {
                std::cerr << "error: --sample-measure must be > 0\n";
                return false;
            }
        } else if (valueOf(arg, "--sample-stride=", v)) {
            opt.params.sampling.windowStride = std::stoull(v);
        } else if (valueOf(arg, "--jobs=", v)) {
            opt.jobs = static_cast<unsigned>(std::stoul(v));
        } else if (valueOf(arg, "--attempts=", v)) {
            opt.attempts = static_cast<unsigned>(std::stoul(v));
        } else if (valueOf(arg, "--deadline-ms=", v)) {
            opt.params.wallClockBudgetMs = std::stoull(v);
        } else if (valueOf(arg, "--backoff-ms=", v)) {
            opt.backoffMs = std::stoull(v);
        } else if (arg == "--rerun-failed") {
            opt.rerunFailed = true;
        } else if (valueOf(arg, "--poison=", v)) {
            std::size_t slash = v.find('/');
            if (slash == std::string::npos) {
                std::cerr << "error: --poison needs SPEC/WORKLOAD\n";
                return false;
            }
            opt.poisonSpec = v.substr(0, slash);
            opt.poisonWorkload = v.substr(slash + 1);
        } else if (arg == "--quick") {
            opt.params.warmupInstructions = 2000;
            opt.params.measureInstructions = 10000;
        } else {
            std::cerr << "error: unknown argument '" << arg << "'\n";
            return false;
        }
    }
    return !opt.workloads.empty() && !opt.specs.empty();
}

/** File-name-safe form of a spec/workload label (file: URIs carry
 *  slashes and colons that cannot appear in a sidecar file name). */
std::string
sanitizeLabel(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '.' ||
                  c == '_';
        out.push_back(ok ? c : '-');
    }
    return out.empty() ? std::string("unnamed") : out;
}

/** Sidecar path for one cell under --out (no store key in the name:
 *  the layout is byte-comparable across runs with `diff -r`). */
std::string
sidecarPath(const std::string &dir, const std::string &spec,
            const std::string &workload)
{
    return dir + "/" + sanitizeLabel(spec) + "__" +
           sanitizeLabel(workload) + ".json";
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 1;

    try {
        std::vector<Workload> workloads;
        for (const std::string &name : opt.workloads)
            workloads.push_back(resolveWorkload(name));
        // Options-aware resolution: hybrid specs pick up the
        // BERTI_HYBRID_* selector geometry and canonicalize their
        // store-key names accordingly.
        const sim::SimOptions simOpt = sim::SimOptions::fromEnv();
        std::vector<PrefetcherSpec> specs;
        for (const std::string &name : opt.specs)
            specs.push_back(makeSpec(name, simOpt));

        std::unique_ptr<harness::ResultStore> store;
        if (!opt.storeDir.empty()) {
            store = std::make_unique<harness::ResultStore>(opt.storeDir);
            if (store->staleTempFilesRemoved() > 0) {
                std::cerr << "sweep: removed "
                          << store->staleTempFilesRemoved()
                          << " stale .tmp file(s) from "
                          << opt.storeDir << "\n";
            }
        }

        harness::SupervisorConfig sup;
        sup.maxAttempts = opt.attempts;
        sup.backoffBaseMs = opt.backoffMs;
        sup.store = store.get();
        sup.rerunFailed = opt.rerunFailed;
        sup.jobs = opt.jobs;
        sup.progress = stderrProgress("sweep");
        if (!opt.poisonSpec.empty()) {
            std::string pspec = opt.poisonSpec;
            std::string pworkload = opt.poisonWorkload;
            sup.preAttempt = [pspec, pworkload](
                                 const std::string &workload,
                                 const std::string &spec, unsigned) {
                if (spec == pspec && workload == pworkload) {
                    throw verify::SimError(
                        verify::ErrorKind::Fault, "sweep_tool",
                        "cell poisoned by --poison (deterministic "
                        "failure for crash-safety tests)");
                }
            };
        }

        harness::SweepReport report = harness::runSupervisedMatrix(
            workloads, specs, opt.params, sup);

        for (std::size_t s = 0; s < report.cells.size(); ++s) {
            for (const harness::CellResult &cell : report.cells[s]) {
                if (cell.ok() && !opt.outDir.empty()) {
                    obs::writeFile(
                        sidecarPath(opt.outDir, cell.spec, cell.workload),
                        obs::toJson(resultSnapshot(cell.result)) + "\n");
                }
                if (!cell.ok()) {
                    std::cerr << "sweep: cell " << cell.spec << "/"
                              << cell.workload << " "
                              << harness::cellOutcomeName(cell.outcome)
                              << " ["
                              << verify::errorKindName(cell.error.kind)
                              << "] " << cell.error.reason << "\n";
                }
            }
        }

        std::cout << "sweep: " << report.summary() << "\n";
        if (store) {
            std::cout << "sweep: store=" << store->directory()
                      << " code=" << harness::resultStoreCodeVersion()
                      << " params="
                      << harness::paramsFingerprint(opt.params) << "\n";
        }
        return report.quarantined + report.skippedQuarantined > 0 ? 2 : 0;
    } catch (const verify::SimError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
