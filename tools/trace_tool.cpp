/**
 * @file
 * Trace utility CLI: record registered workloads into binary trace
 * files, inspect trace statistics, and replay trace files on the
 * simulated machine. The workflow mirrors how ChampSim traces back the
 * paper's artifact.
 *
 * Usage:
 *   trace_tool record <workload> <count> <file>
 *   trace_tool info <file>
 *   trace_tool run <file> [prefetcher] [instructions]
 */

#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/machine.hh"
#include "harness/table.hh"
#include "trace/champsim.hh"
#include "trace/registry.hh"
#include "trace/trace_io.hh"

namespace
{

using namespace berti;

int
cmdRecord(const std::string &workload, std::uint64_t count,
          const std::string &path)
{
    // resolveWorkload: registry names and file: URIs both record, so
    // the tool doubles as a ChampSim -> native trace converter.
    auto gen = resolveWorkload(workload).make();
    auto written = saveTrace(path, *gen, count);
    if (!written.ok()) {
        std::cerr << "error: " << written.error().what() << "\n";
        return 1;
    }
    std::cout << "recorded " << count << " instructions of " << workload
              << " to " << path << " (" << written.value()
              << " bytes)\n";
    return 0;
}

/** Decode a whole ChampSim trace through the streaming stack. */
std::vector<TraceInstr>
loadChampSim(const std::string &path)
{
    StreamTraceSource src(path);
    ChampSimDecoder dec(src);
    std::vector<TraceInstr> instrs;
    TraceInstr in;
    while (dec.next(in))
        instrs.push_back(in);
    return instrs;
}

int
cmdInfo(const std::string &path)
{
    std::vector<TraceInstr> instrs;
    if (isChampSimTracePath(path)) {
        instrs = loadChampSim(path);  // typed SimError on failure
    } else {
        auto loaded = loadTrace(path);
        if (!loaded.ok()) {
            std::cerr << "error: " << loaded.error().what() << "\n";
            return 1;
        }
        instrs = std::move(loaded.value());
    }
    if (instrs.empty()) {
        std::cerr << "error: " << path << " holds no instructions\n";
        return 1;
    }
    std::uint64_t loads = 0, stores = 0, branches = 0, taken = 0,
                  deps = 0;
    std::set<Addr> ips, pages;
    for (const auto &in : instrs) {
        loads += in.isLoad() ? 1 : 0;
        stores += in.isStore() ? 1 : 0;
        branches += in.isBranch ? 1 : 0;
        taken += in.taken ? 1 : 0;
        deps += in.dependsOnPrevLoad ? 1 : 0;
        ips.insert(in.ip);
        if (in.isLoad())
            pages.insert(pageAddr(in.load0));
        if (in.isStore())
            pages.insert(pageAddr(in.store));
    }
    double n = static_cast<double>(instrs.size());
    TextTable t({"metric", "value"});
    t.addRow({"instructions", std::to_string(instrs.size())});
    t.addRow({"loads", TextTable::pct(loads / n)});
    t.addRow({"stores", TextTable::pct(stores / n)});
    t.addRow({"branches", TextTable::pct(branches / n)});
    t.addRow({"taken-rate",
              branches ? TextTable::pct(static_cast<double>(taken) /
                                        branches)
                       : "-"});
    t.addRow({"dependent-loads", std::to_string(deps)});
    t.addRow({"distinct-IPs", std::to_string(ips.size())});
    t.addRow({"distinct-data-pages", std::to_string(pages.size())});
    t.print(std::cout);
    return 0;
}

int
cmdRun(const std::string &path, const std::string &pf,
       std::uint64_t instructions)
{
    std::unique_ptr<TraceGenerator> gen;
    if (path.compare(0, 5, "file:") == 0)
        gen = resolveWorkload(path).make();  // full URI validation
    else if (isChampSimTracePath(path))
        gen = std::make_unique<ChampSimReplayGen>(path);
    else
        gen = std::make_unique<FileReplayGen>(path);
    MachineConfig cfg = MachineConfig::sunnyCove(1);
    PrefetcherSpec spec = makeSpec(pf);
    cfg.l1dPrefetcher = spec.l1d;
    cfg.l2Prefetcher = spec.l2;
    Machine m(cfg, {gen.get()});
    m.run(instructions);
    RunStats s = m.liveStats(0);
    std::cout << s.summary() << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace berti;
    std::string cmd = argc > 1 ? argv[1] : "";
    try {
        if (cmd == "record" && argc == 5)
            return cmdRecord(argv[2], std::stoull(argv[3]), argv[4]);
        if (cmd == "info" && argc == 3)
            return cmdInfo(argv[2]);
        if (cmd == "run" && (argc == 3 || argc == 4 || argc == 5)) {
            return cmdRun(argv[2], argc > 3 ? argv[3] : "berti",
                          argc > 4 ? std::stoull(argv[4]) : 200000);
        }
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    std::cerr << "usage:\n"
                 "  trace_tool record <workload> <count> <file>\n"
                 "  trace_tool info <file>\n"
                 "  trace_tool run <file> [prefetcher] [instructions]\n";
    return 2;
}
