#!/bin/sh
# Regenerate the golden-stats JSON files under tests/goldens/.
#
# Run this after an *intentional* simulator behaviour change, review the
# resulting diff (every changed counter should be explainable by your
# change), and commit the JSON files together with the code.
#
# Usage: tools/update_goldens.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
build="${1:-build}"

for t in test_golden test_sampling; do
    if [ ! -x "$build/tests/$t" ]; then
        echo "error: $build/tests/$t not built." >&2
        echo "  cmake -B $build -S . && cmake --build $build -j" >&2
        exit 1
    fi
done

BERTI_UPDATE_GOLDENS=1 "$build/tests/test_golden" \
    --gtest_filter='Matrix/GoldenTest.*'

# The sampled-interval sidecars (*.sampled.json) live in the same
# directory and regenerate the same way.
BERTI_UPDATE_GOLDENS=1 "$build/tests/test_sampling" \
    --gtest_filter='Matrix/SampledGoldenTest.*'

echo "goldens updated:"
git status --short tests/goldens/ || ls tests/goldens/
