#!/bin/sh
# Run every bench binary, one output file per bench under results/.
# Resumable: benches with a non-empty results file are skipped, so the
# script can be re-invoked until it prints ALL_BENCHES_DONE.
mkdir -p results
for b in build/bench/*; do
    n=$(basename "$b")
    { [ -f "$b" ] && [ -x "$b" ]; } || continue
    [ "$n" = "micro_prefetchers" ] && continue
    [ -s "results/$n.txt" ] && continue
    echo "=== $n start $(date +%T)"
    "./build/bench/$n" > "results/$n.txt" 2> /dev/null || true
    echo "=== $n done $(date +%T)"
done
if [ ! -s results/micro_prefetchers.txt ]; then
    ./build/bench/micro_prefetchers --benchmark_min_time=0.1s \
        > results/micro_prefetchers.txt 2> /dev/null || true
fi
echo ALL_BENCHES_DONE
