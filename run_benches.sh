#!/bin/sh
# Run every bench binary, one output file per bench under results/.
# Resumable: benches with a results file are skipped, so the script can
# be re-invoked until it prints ALL_BENCHES_DONE.
#
# A bench's output is written to a temp file and only moved into
# results/ when the bench exits 0, so a crashed or interrupted bench is
# retried on the next invocation instead of leaving a partial file that
# passes the resume check. Stderr (progress + crash reports) is kept in
# results/log/<bench>.stderr for postmortems.
#
# The bench binaries fan (workload, spec) cells out over a worker pool;
# BERTI_JOBS caps the pool (default: all hardware threads).
#
# Sampled mode: set BERTI_SAMPLE_WINDOWS=N (plus optionally
# BERTI_SAMPLE_WARMUP / BERTI_SAMPLE_MEASURE / BERTI_SAMPLE_STRIDE) and
# every bench measures N sampled windows instead of the full region of
# interest — regenerating the figure matrix at a fraction of the
# simulated instructions. Sampled outputs land under results-sampled/
# so they never mix with (or satisfy the resume check of) full runs.
BERTI_JOBS="${BERTI_JOBS:-$(nproc 2>/dev/null || echo 1)}"
export BERTI_JOBS

results="results"
if [ -n "${BERTI_SAMPLE_WINDOWS:-}" ] && [ "${BERTI_SAMPLE_WINDOWS}" != "0" ]; then
    results="results-sampled"
    echo "=== sampled mode: BERTI_SAMPLE_WINDOWS=$BERTI_SAMPLE_WINDOWS, writing to $results/"
fi

mkdir -p "$results" "$results/log"
# Sweep staging files left by a previous invocation that was killed
# mid-write (both the script's own .txt.tmp files and the atomic-write
# .json.tmp files under $results/stats/). Completed outputs never carry
# the .tmp suffix, so this only ever removes torn partials.
find "$results" -name '*.tmp' -type f -exec rm -f {} + 2>/dev/null
failed=""
for b in build/bench/*; do
    n=$(basename "$b")
    { [ -f "$b" ] && [ -x "$b" ]; } || continue
    [ "$n" = "micro_prefetchers" ] && continue
    [ "$n" = "perf_simspeed" ] && continue
    [ -s "$results/$n.txt" ] && continue
    echo "=== $n start $(date +%T) (BERTI_JOBS=$BERTI_JOBS)"
    tmp="$results/.$n.txt.tmp"
    # Machine-diffable JSON stats sidecars, one per (spec, workload)
    # cell, next to the human-readable table output. fig24_mem_backends
    # nests one subdirectory per memory backend in here, so its
    # identically-named spec x workload cells never collide.
    BERTI_STATS_DIR="$results/stats/$n"
    export BERTI_STATS_DIR
    if "./build/bench/$n" > "$tmp" 2> "$results/log/$n.stderr"; then
        mv "$tmp" "$results/$n.txt"
        echo "=== $n done $(date +%T)"
    else
        rc=$?
        rm -f "$tmp"
        failed="$failed $n"
        echo "=== $n FAILED rc=$rc $(date +%T) (see $results/log/$n.stderr)"
    fi
done
# Simulator-speed harness: human table to $results/perf_simspeed.txt plus
# the JSON artifact, collected via temp-file+mv so an interrupted run
# never leaves a partial BENCH_simspeed.json behind.
if [ ! -s "$results/BENCH_simspeed.json" ]; then
    tmp="$results/.perf_simspeed.txt.tmp"
    tmpjson="$results/.BENCH_simspeed.json.tmp"
    if ./build/bench/perf_simspeed "--out=$tmpjson" > "$tmp" \
        2> "$results/log/perf_simspeed.stderr"; then
        mv "$tmpjson" "$results/BENCH_simspeed.json"
        mv "$tmp" "$results/perf_simspeed.txt"
    else
        rm -f "$tmp" "$tmpjson"
        failed="$failed perf_simspeed"
        echo "=== perf_simspeed FAILED (see $results/log/perf_simspeed.stderr)"
    fi
fi
if [ ! -s "$results/micro_prefetchers.txt" ]; then
    tmp="$results/.micro_prefetchers.txt.tmp"
    if ./build/bench/micro_prefetchers --benchmark_min_time=0.1s \
        > "$tmp" 2> "$results/log/micro_prefetchers.stderr"; then
        mv "$tmp" "$results/micro_prefetchers.txt"
    else
        rm -f "$tmp"
        failed="$failed micro_prefetchers"
        echo "=== micro_prefetchers FAILED (see $results/log/micro_prefetchers.stderr)"
    fi
fi
# Real-trace sweep: point BERTI_TRACE_DIR at a directory of ChampSim
# traces (*.champsim, *.champsim.xz, *.champsim.gz) and every trace is
# swept through the prefetcher specs as a file: workload. Per-trace JSON
# sidecars land under $results/stats/traces/, the human table in
# $results/traces.txt, and the crash-safe result store under
# $results/trace_store (so a killed sweep resumes; content-hashed keys
# mean a replaced trace file recomputes instead of reusing stale cells).
if [ -n "${BERTI_TRACE_DIR:-}" ]; then
    traces=""
    for t in "$BERTI_TRACE_DIR"/*.champsim \
             "$BERTI_TRACE_DIR"/*.champsim.xz \
             "$BERTI_TRACE_DIR"/*.champsim.gz; do
        [ -f "$t" ] || continue
        if [ -n "$traces" ]; then
            traces="$traces,file:$t"
        else
            traces="file:$t"
        fi
    done
    if [ -z "$traces" ]; then
        echo "=== BERTI_TRACE_DIR=$BERTI_TRACE_DIR holds no *.champsim traces, skipping"
    elif [ -s "$results/traces.txt" ]; then
        : # resumed invocation: trace sweep already complete
    else
        echo "=== traces start $(date +%T) (BERTI_TRACE_DIR=$BERTI_TRACE_DIR)"
        tmp="$results/.traces.txt.tmp"
        if ./build/tools/sweep_tool \
            --workloads="$traces" \
            --specs="${BERTI_TRACE_SPECS:-none,ip-stride,berti}" \
            --store="$results/trace_store" \
            --out="$results/stats/traces" \
            --jobs="$BERTI_JOBS" > "$tmp" \
            2> "$results/log/traces.stderr"; then
            mv "$tmp" "$results/traces.txt"
            echo "=== traces done $(date +%T)"
        else
            rc=$?
            rm -f "$tmp"
            failed="$failed traces"
            echo "=== traces FAILED rc=$rc $(date +%T) (see $results/log/traces.stderr)"
        fi
    fi
fi
if [ -n "$failed" ]; then
    echo "FAILED_BENCHES:$failed"
    exit 1
fi
echo ALL_BENCHES_DONE
