#!/usr/bin/env python3
"""Insert measured bench outputs into EXPERIMENTS.md placeholders.

Each <!--FIGxx--> marker is replaced by the corresponding results/ file
content, fenced as a code block. Idempotent: run after ./run_benches.sh.
"""
import pathlib
import re

MAPPING = {
    "FIG01": "fig01_motivation",
    "FIG03": "fig03_local_vs_global",
    "FIG07": "fig07_speedup_vs_storage",
    "FIG08": "fig08_l1d_speedup",
    "FIG10": "fig10_accuracy",
    "FIG11": "fig11_mpki",
    "FIG12": "fig12_multilevel_speedup",
    "FIG14": "fig14_traffic",
    "FIG15": "fig15_energy",
    "FIG16": "fig16_dram_bw_l1d",
    "FIG18": "fig18_cloudsuite",
    "FIG19": "fig19_misb",
    "FIG20": "fig20_multicore",
    "FIG21": "fig21_watermarks",
    "FIG22": "fig22_table_sizes",
}


def main() -> None:
    doc = pathlib.Path("EXPERIMENTS.md")
    text = doc.read_text()
    for marker, bench in MAPPING.items():
        path = pathlib.Path("results") / f"{bench}.txt"
        if not path.exists():
            continue
        body = path.read_text().strip()
        block = f"```\n{body}\n```"
        # Replace either the bare marker or a previously filled block
        # that still carries the marker as its first line.
        pattern = re.compile(
            r"<!--" + marker + r"-->(?:\n```.*?```)?", re.S)
        text = pattern.sub(f"<!--{marker}-->\n{block}", text, count=1)
    doc.write_text(text)
    print("EXPERIMENTS.md updated")


if __name__ == "__main__":
    main()
