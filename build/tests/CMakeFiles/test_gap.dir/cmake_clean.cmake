file(REMOVE_RECURSE
  "CMakeFiles/test_gap.dir/test_gap.cpp.o"
  "CMakeFiles/test_gap.dir/test_gap.cpp.o.d"
  "test_gap"
  "test_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
