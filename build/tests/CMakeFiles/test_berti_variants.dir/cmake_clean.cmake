file(REMOVE_RECURSE
  "CMakeFiles/test_berti_variants.dir/test_berti_variants.cpp.o"
  "CMakeFiles/test_berti_variants.dir/test_berti_variants.cpp.o.d"
  "test_berti_variants"
  "test_berti_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_berti_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
