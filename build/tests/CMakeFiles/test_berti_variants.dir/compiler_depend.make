# Empty compiler generated dependencies file for test_berti_variants.
# This may be replaced when dependencies are built.
