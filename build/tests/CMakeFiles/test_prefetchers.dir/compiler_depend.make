# Empty compiler generated dependencies file for test_prefetchers.
# This may be replaced when dependencies are built.
