file(REMOVE_RECURSE
  "CMakeFiles/test_prefetchers_extra.dir/test_prefetchers_extra.cpp.o"
  "CMakeFiles/test_prefetchers_extra.dir/test_prefetchers_extra.cpp.o.d"
  "test_prefetchers_extra"
  "test_prefetchers_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetchers_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
