# Empty dependencies file for test_prefetchers_extra.
# This may be replaced when dependencies are built.
