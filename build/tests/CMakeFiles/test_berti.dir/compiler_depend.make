# Empty compiler generated dependencies file for test_berti.
# This may be replaced when dependencies are built.
