file(REMOVE_RECURSE
  "CMakeFiles/test_berti.dir/test_berti.cpp.o"
  "CMakeFiles/test_berti.dir/test_berti.cpp.o.d"
  "test_berti"
  "test_berti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_berti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
