# Empty dependencies file for prefetcher_shootout.
# This may be replaced when dependencies are built.
