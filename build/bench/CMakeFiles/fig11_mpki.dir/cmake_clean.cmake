file(REMOVE_RECURSE
  "CMakeFiles/fig11_mpki.dir/fig11_mpki.cpp.o"
  "CMakeFiles/fig11_mpki.dir/fig11_mpki.cpp.o.d"
  "fig11_mpki"
  "fig11_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
