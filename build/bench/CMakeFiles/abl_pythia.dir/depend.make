# Empty dependencies file for abl_pythia.
# This may be replaced when dependencies are built.
