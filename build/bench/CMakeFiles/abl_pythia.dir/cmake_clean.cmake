file(REMOVE_RECURSE
  "CMakeFiles/abl_pythia.dir/abl_pythia.cpp.o"
  "CMakeFiles/abl_pythia.dir/abl_pythia.cpp.o.d"
  "abl_pythia"
  "abl_pythia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pythia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
