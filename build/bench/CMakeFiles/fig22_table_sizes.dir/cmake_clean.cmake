file(REMOVE_RECURSE
  "CMakeFiles/fig22_table_sizes.dir/fig22_table_sizes.cpp.o"
  "CMakeFiles/fig22_table_sizes.dir/fig22_table_sizes.cpp.o.d"
  "fig22_table_sizes"
  "fig22_table_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_table_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
