# Empty compiler generated dependencies file for fig22_table_sizes.
# This may be replaced when dependencies are built.
