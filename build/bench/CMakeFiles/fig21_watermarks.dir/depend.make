# Empty dependencies file for fig21_watermarks.
# This may be replaced when dependencies are built.
