file(REMOVE_RECURSE
  "CMakeFiles/fig21_watermarks.dir/fig21_watermarks.cpp.o"
  "CMakeFiles/fig21_watermarks.dir/fig21_watermarks.cpp.o.d"
  "fig21_watermarks"
  "fig21_watermarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_watermarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
