# Empty compiler generated dependencies file for fig13_multilevel_mpki.
# This may be replaced when dependencies are built.
