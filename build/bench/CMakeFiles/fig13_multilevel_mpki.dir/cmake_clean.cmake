file(REMOVE_RECURSE
  "CMakeFiles/fig13_multilevel_mpki.dir/fig13_multilevel_mpki.cpp.o"
  "CMakeFiles/fig13_multilevel_mpki.dir/fig13_multilevel_mpki.cpp.o.d"
  "fig13_multilevel_mpki"
  "fig13_multilevel_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_multilevel_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
