file(REMOVE_RECURSE
  "CMakeFiles/abl_per_page.dir/abl_per_page.cpp.o"
  "CMakeFiles/abl_per_page.dir/abl_per_page.cpp.o.d"
  "abl_per_page"
  "abl_per_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_per_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
