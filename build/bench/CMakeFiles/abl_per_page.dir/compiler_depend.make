# Empty compiler generated dependencies file for abl_per_page.
# This may be replaced when dependencies are built.
