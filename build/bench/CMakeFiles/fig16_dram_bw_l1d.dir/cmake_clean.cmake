file(REMOVE_RECURSE
  "CMakeFiles/fig16_dram_bw_l1d.dir/fig16_dram_bw_l1d.cpp.o"
  "CMakeFiles/fig16_dram_bw_l1d.dir/fig16_dram_bw_l1d.cpp.o.d"
  "fig16_dram_bw_l1d"
  "fig16_dram_bw_l1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_dram_bw_l1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
