# Empty dependencies file for fig16_dram_bw_l1d.
# This may be replaced when dependencies are built.
