file(REMOVE_RECURSE
  "CMakeFiles/fig03_local_vs_global.dir/fig03_local_vs_global.cpp.o"
  "CMakeFiles/fig03_local_vs_global.dir/fig03_local_vs_global.cpp.o.d"
  "fig03_local_vs_global"
  "fig03_local_vs_global.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_local_vs_global.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
