file(REMOVE_RECURSE
  "CMakeFiles/fig20_multicore.dir/fig20_multicore.cpp.o"
  "CMakeFiles/fig20_multicore.dir/fig20_multicore.cpp.o.d"
  "fig20_multicore"
  "fig20_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
