# Empty dependencies file for fig20_multicore.
# This may be replaced when dependencies are built.
