# Empty dependencies file for fig17_dram_bw_multilevel.
# This may be replaced when dependencies are built.
