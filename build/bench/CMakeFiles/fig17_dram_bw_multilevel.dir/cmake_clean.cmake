file(REMOVE_RECURSE
  "CMakeFiles/fig17_dram_bw_multilevel.dir/fig17_dram_bw_multilevel.cpp.o"
  "CMakeFiles/fig17_dram_bw_multilevel.dir/fig17_dram_bw_multilevel.cpp.o.d"
  "fig17_dram_bw_multilevel"
  "fig17_dram_bw_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_dram_bw_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
