file(REMOVE_RECURSE
  "CMakeFiles/fig19_misb.dir/fig19_misb.cpp.o"
  "CMakeFiles/fig19_misb.dir/fig19_misb.cpp.o.d"
  "fig19_misb"
  "fig19_misb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_misb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
