# Empty dependencies file for fig19_misb.
# This may be replaced when dependencies are built.
