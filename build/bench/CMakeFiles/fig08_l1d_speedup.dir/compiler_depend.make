# Empty compiler generated dependencies file for fig08_l1d_speedup.
# This may be replaced when dependencies are built.
