file(REMOVE_RECURSE
  "CMakeFiles/fig08_l1d_speedup.dir/fig08_l1d_speedup.cpp.o"
  "CMakeFiles/fig08_l1d_speedup.dir/fig08_l1d_speedup.cpp.o.d"
  "fig08_l1d_speedup"
  "fig08_l1d_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_l1d_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
