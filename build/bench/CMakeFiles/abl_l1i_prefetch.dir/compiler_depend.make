# Empty compiler generated dependencies file for abl_l1i_prefetch.
# This may be replaced when dependencies are built.
