file(REMOVE_RECURSE
  "CMakeFiles/abl_l1i_prefetch.dir/abl_l1i_prefetch.cpp.o"
  "CMakeFiles/abl_l1i_prefetch.dir/abl_l1i_prefetch.cpp.o.d"
  "abl_l1i_prefetch"
  "abl_l1i_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_l1i_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
