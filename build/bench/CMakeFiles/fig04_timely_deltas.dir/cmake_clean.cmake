file(REMOVE_RECURSE
  "CMakeFiles/fig04_timely_deltas.dir/fig04_timely_deltas.cpp.o"
  "CMakeFiles/fig04_timely_deltas.dir/fig04_timely_deltas.cpp.o.d"
  "fig04_timely_deltas"
  "fig04_timely_deltas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_timely_deltas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
