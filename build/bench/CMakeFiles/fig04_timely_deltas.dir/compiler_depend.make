# Empty compiler generated dependencies file for fig04_timely_deltas.
# This may be replaced when dependencies are built.
