# Empty compiler generated dependencies file for abl_latency_bits.
# This may be replaced when dependencies are built.
