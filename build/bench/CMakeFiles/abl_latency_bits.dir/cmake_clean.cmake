file(REMOVE_RECURSE
  "CMakeFiles/abl_latency_bits.dir/abl_latency_bits.cpp.o"
  "CMakeFiles/abl_latency_bits.dir/abl_latency_bits.cpp.o.d"
  "abl_latency_bits"
  "abl_latency_bits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_latency_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
