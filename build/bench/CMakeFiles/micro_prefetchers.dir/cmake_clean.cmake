file(REMOVE_RECURSE
  "CMakeFiles/micro_prefetchers.dir/micro_prefetchers.cpp.o"
  "CMakeFiles/micro_prefetchers.dir/micro_prefetchers.cpp.o.d"
  "micro_prefetchers"
  "micro_prefetchers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
