# Empty dependencies file for micro_prefetchers.
# This may be replaced when dependencies are built.
