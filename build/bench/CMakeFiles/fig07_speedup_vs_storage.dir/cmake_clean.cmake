file(REMOVE_RECURSE
  "CMakeFiles/fig07_speedup_vs_storage.dir/fig07_speedup_vs_storage.cpp.o"
  "CMakeFiles/fig07_speedup_vs_storage.dir/fig07_speedup_vs_storage.cpp.o.d"
  "fig07_speedup_vs_storage"
  "fig07_speedup_vs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_speedup_vs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
