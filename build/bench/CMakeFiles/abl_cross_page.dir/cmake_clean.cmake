file(REMOVE_RECURSE
  "CMakeFiles/abl_cross_page.dir/abl_cross_page.cpp.o"
  "CMakeFiles/abl_cross_page.dir/abl_cross_page.cpp.o.d"
  "abl_cross_page"
  "abl_cross_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cross_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
