# Empty compiler generated dependencies file for abl_cross_page.
# This may be replaced when dependencies are built.
