file(REMOVE_RECURSE
  "CMakeFiles/fig09_per_trace.dir/fig09_per_trace.cpp.o"
  "CMakeFiles/fig09_per_trace.dir/fig09_per_trace.cpp.o.d"
  "fig09_per_trace"
  "fig09_per_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_per_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
