# Empty dependencies file for fig09_per_trace.
# This may be replaced when dependencies are built.
