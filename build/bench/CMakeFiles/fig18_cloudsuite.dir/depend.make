# Empty dependencies file for fig18_cloudsuite.
# This may be replaced when dependencies are built.
