file(REMOVE_RECURSE
  "CMakeFiles/fig18_cloudsuite.dir/fig18_cloudsuite.cpp.o"
  "CMakeFiles/fig18_cloudsuite.dir/fig18_cloudsuite.cpp.o.d"
  "fig18_cloudsuite"
  "fig18_cloudsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_cloudsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
