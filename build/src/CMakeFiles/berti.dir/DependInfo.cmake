
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/berti.cc" "src/CMakeFiles/berti.dir/core/berti.cc.o" "gcc" "src/CMakeFiles/berti.dir/core/berti.cc.o.d"
  "/root/repo/src/cpu/branch_predictor.cc" "src/CMakeFiles/berti.dir/cpu/branch_predictor.cc.o" "gcc" "src/CMakeFiles/berti.dir/cpu/branch_predictor.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/berti.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/berti.dir/cpu/core.cc.o.d"
  "/root/repo/src/energy/energy_model.cc" "src/CMakeFiles/berti.dir/energy/energy_model.cc.o" "gcc" "src/CMakeFiles/berti.dir/energy/energy_model.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/berti.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/berti.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/machine.cc" "src/CMakeFiles/berti.dir/harness/machine.cc.o" "gcc" "src/CMakeFiles/berti.dir/harness/machine.cc.o.d"
  "/root/repo/src/harness/table.cc" "src/CMakeFiles/berti.dir/harness/table.cc.o" "gcc" "src/CMakeFiles/berti.dir/harness/table.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/CMakeFiles/berti.dir/mem/cache.cc.o" "gcc" "src/CMakeFiles/berti.dir/mem/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/berti.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/berti.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/replacement.cc" "src/CMakeFiles/berti.dir/mem/replacement.cc.o" "gcc" "src/CMakeFiles/berti.dir/mem/replacement.cc.o.d"
  "/root/repo/src/prefetch/bingo.cc" "src/CMakeFiles/berti.dir/prefetch/bingo.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/bingo.cc.o.d"
  "/root/repo/src/prefetch/bop.cc" "src/CMakeFiles/berti.dir/prefetch/bop.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/bop.cc.o.d"
  "/root/repo/src/prefetch/ip_stride.cc" "src/CMakeFiles/berti.dir/prefetch/ip_stride.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/ip_stride.cc.o.d"
  "/root/repo/src/prefetch/ipcp.cc" "src/CMakeFiles/berti.dir/prefetch/ipcp.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/ipcp.cc.o.d"
  "/root/repo/src/prefetch/misb.cc" "src/CMakeFiles/berti.dir/prefetch/misb.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/misb.cc.o.d"
  "/root/repo/src/prefetch/mlop.cc" "src/CMakeFiles/berti.dir/prefetch/mlop.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/mlop.cc.o.d"
  "/root/repo/src/prefetch/next_line.cc" "src/CMakeFiles/berti.dir/prefetch/next_line.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/next_line.cc.o.d"
  "/root/repo/src/prefetch/ppf.cc" "src/CMakeFiles/berti.dir/prefetch/ppf.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/ppf.cc.o.d"
  "/root/repo/src/prefetch/prefetcher.cc" "src/CMakeFiles/berti.dir/prefetch/prefetcher.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/prefetcher.cc.o.d"
  "/root/repo/src/prefetch/pythia.cc" "src/CMakeFiles/berti.dir/prefetch/pythia.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/pythia.cc.o.d"
  "/root/repo/src/prefetch/sms.cc" "src/CMakeFiles/berti.dir/prefetch/sms.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/sms.cc.o.d"
  "/root/repo/src/prefetch/spp.cc" "src/CMakeFiles/berti.dir/prefetch/spp.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/spp.cc.o.d"
  "/root/repo/src/prefetch/stream.cc" "src/CMakeFiles/berti.dir/prefetch/stream.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/stream.cc.o.d"
  "/root/repo/src/prefetch/vldp.cc" "src/CMakeFiles/berti.dir/prefetch/vldp.cc.o" "gcc" "src/CMakeFiles/berti.dir/prefetch/vldp.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/berti.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/berti.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/berti.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/berti.dir/sim/stats.cc.o.d"
  "/root/repo/src/trace/gap_kernels.cc" "src/CMakeFiles/berti.dir/trace/gap_kernels.cc.o" "gcc" "src/CMakeFiles/berti.dir/trace/gap_kernels.cc.o.d"
  "/root/repo/src/trace/generators.cc" "src/CMakeFiles/berti.dir/trace/generators.cc.o" "gcc" "src/CMakeFiles/berti.dir/trace/generators.cc.o.d"
  "/root/repo/src/trace/graph.cc" "src/CMakeFiles/berti.dir/trace/graph.cc.o" "gcc" "src/CMakeFiles/berti.dir/trace/graph.cc.o.d"
  "/root/repo/src/trace/registry.cc" "src/CMakeFiles/berti.dir/trace/registry.cc.o" "gcc" "src/CMakeFiles/berti.dir/trace/registry.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/CMakeFiles/berti.dir/trace/trace_io.cc.o" "gcc" "src/CMakeFiles/berti.dir/trace/trace_io.cc.o.d"
  "/root/repo/src/vm/page_table.cc" "src/CMakeFiles/berti.dir/vm/page_table.cc.o" "gcc" "src/CMakeFiles/berti.dir/vm/page_table.cc.o.d"
  "/root/repo/src/vm/tlb.cc" "src/CMakeFiles/berti.dir/vm/tlb.cc.o" "gcc" "src/CMakeFiles/berti.dir/vm/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
