# Empty compiler generated dependencies file for berti.
# This may be replaced when dependencies are built.
