file(REMOVE_RECURSE
  "libberti.a"
)
